package weighted

import (
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/core"
	"chameleon/internal/uncertain"
)

func randNew(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1)) }

func lineGraph(t *testing.T, probs, weights []float64) *Graph {
	t.Helper()
	g := uncertain.New(len(probs) + 1)
	for i, p := range probs {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), p)
	}
	wg, err := New(g, weights)
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

func TestNewValidation(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	if _, err := New(g, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := New(g, []float64{-1}); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := New(g, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight should error")
	}
	if _, err := New(g, []float64{math.Inf(1)}); err == nil {
		t.Fatal("infinite weight should error")
	}
	wg, err := New(g, []float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if wg.Weight(0) != 2.5 {
		t.Fatalf("Weight(0) = %v", wg.Weight(0))
	}
}

func TestWeightsAreCopied(t *testing.T) {
	g := uncertain.New(2)
	g.MustAddEdge(0, 1, 0.5)
	in := []float64{3}
	wg, err := New(g, in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	if wg.Weight(0) != 3 {
		t.Fatal("New must copy the weight vector")
	}
	out := wg.Weights()
	out[0] = 42
	if wg.Weight(0) != 3 {
		t.Fatal("Weights must return a copy")
	}
}

func TestUniform(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	wg := Uniform(g)
	if wg.Weight(0) != 1 || wg.Weight(1) != 1 {
		t.Fatal("uniform weights should be 1")
	}
	if wg.Uncertain() != g {
		t.Fatal("Uncertain should return the wrapped graph")
	}
}

func TestDijkstraPath(t *testing.T) {
	wg := lineGraph(t, []float64{1, 1, 1}, []float64{2, 3, 4})
	w := wg.Uncertain().MostProbableWorld()
	dist := wg.Dijkstra(w, 0)
	want := []float64{0, 2, 5, 9}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist[%d] = %v, want %v", i, dist[i], want[i])
		}
	}
}

func TestDijkstraPicksCheaperRoute(t *testing.T) {
	// 0-1-2 with weights 1+1 = 2 beats the direct 0-2 edge of weight 5.
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	wg, err := New(g, []float64{1, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	dist := wg.Dijkstra(g.MostProbableWorld(), 0)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2 (via node 1)", dist[2])
	}
}

func TestDijkstraRespectsWorld(t *testing.T) {
	wg := lineGraph(t, []float64{1, 1}, []float64{1, 1})
	w := wg.Uncertain().WorldFromMask([]bool{true, false})
	dist := wg.Dijkstra(w, 0)
	if dist[1] != 1 {
		t.Fatalf("dist[1] = %v", dist[1])
	}
	if !math.IsInf(dist[2], 1) {
		t.Fatalf("absent edge should disconnect node 2, dist = %v", dist[2])
	}
}

func TestExpectedTravelDeterministicLine(t *testing.T) {
	// Certain path with unit weights: expected cost equals the hop
	// distance average; reachability is 1.
	wg := lineGraph(t, []float64{1, 1, 1}, []float64{1, 1, 1})
	stats := wg.ExpectedTravel(Options{Samples: 10, Sources: 4, Seed: 1})
	if stats.Reachability != 1 {
		t.Fatalf("reachability = %v, want 1", stats.Reachability)
	}
	if stats.MeanCost <= 0 || stats.MeanCost > 3 {
		t.Fatalf("mean cost = %v out of (0,3]", stats.MeanCost)
	}
}

func TestExpectedTravelUncertainReachability(t *testing.T) {
	// Single edge with p=0.3: reachability over the 2-node graph is ~0.3.
	g := uncertain.New(2)
	g.MustAddEdge(0, 1, 0.3)
	wg := Uniform(g)
	stats := wg.ExpectedTravel(Options{Samples: 4000, Sources: 2, Seed: 2})
	if math.Abs(stats.Reachability-0.3) > 0.03 {
		t.Fatalf("reachability = %v, want ~0.3", stats.Reachability)
	}
	if math.Abs(stats.MeanCost-1) > 1e-9 {
		t.Fatalf("mean cost over reachable pairs = %v, want 1", stats.MeanCost)
	}
}

func TestExpectedTravelTinyGraph(t *testing.T) {
	g := uncertain.New(1)
	wg := Uniform(g)
	stats := wg.ExpectedTravel(Options{Samples: 5})
	if stats.MeanCost != 0 || stats.Reachability != 0 {
		t.Fatalf("single-node stats = %+v", stats)
	}
}

func TestWithProbabilitiesRebindsWeights(t *testing.T) {
	// A weighted road network anonymized by Chameleon keeps its weights
	// on surviving edges; injected edges get the default weight.
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.9)
	g.MustAddEdge(1, 2, 0.8)
	g.MustAddEdge(2, 3, 0.7)
	wg, err := New(g, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	pub := g.Clone()
	if err := pub.SetProb(0, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := pub.AddEdge(0, 3, 0.2); err != nil { // injected by anonymizer
		t.Fatal(err)
	}
	rebound, err := wg.WithProbabilities(pub, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := rebound.Weight(pub.EdgeIndex(1, 2)); got != 20 {
		t.Fatalf("surviving edge weight = %v, want 20", got)
	}
	if got := rebound.Weight(pub.EdgeIndex(0, 3)); got != 99 {
		t.Fatalf("injected edge weight = %v, want default 99", got)
	}
}

func TestWithProbabilitiesErrors(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	wg := Uniform(g)
	if _, err := wg.WithProbabilities(uncertain.New(5), 1); err == nil {
		t.Fatal("vertex mismatch should error")
	}
	if _, err := wg.WithProbabilities(g.Clone(), -1); err == nil {
		t.Fatal("negative default weight should error")
	}
}

// TestAnonymizedRoadNetworkKeepsTravelStructure is the end-to-end weighted
// scenario: anonymize the existence probabilities, rebind the weights, and
// check the expected travel cost stays close while privacy is gained.
func TestAnonymizedRoadNetworkKeepsTravelStructure(t *testing.T) {
	// Grid road network with certain-ish roads and varying travel times.
	const side = 8
	g := uncertain.New(side * side)
	var weights []float64
	id := func(r, c int) uncertain.NodeID { return uncertain.NodeID(r*side + c) }
	wv := 0
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				g.MustAddEdge(id(r, c), id(r, c+1), 0.7)
				weights = append(weights, float64(1+wv%5))
				wv++
			}
			if r+1 < side {
				g.MustAddEdge(id(r, c), id(r+1, c), 0.7)
				weights = append(weights, float64(1+wv%5))
				wv++
			}
		}
	}
	wg, err := New(g, weights)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Anonymize(g, core.Params{K: 4, Epsilon: 0.05, Samples: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pubW, err := wg.WithProbabilities(res.Graph, 3) // median weight for new roads
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Samples: 100, Sources: 8, Seed: 9}
	before := wg.ExpectedTravel(o)
	after := pubW.ExpectedTravel(o)
	if before.MeanCost <= 0 || after.MeanCost <= 0 {
		t.Fatalf("costs should be positive: %+v %+v", before, after)
	}
	if rel := math.Abs(after.MeanCost-before.MeanCost) / before.MeanCost; rel > 0.5 {
		t.Fatalf("travel cost distorted by %.0f%%", rel*100)
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := uncertain.New(1000)
	rng := randNew(3)
	for g.NumEdges() < 4000 {
		u := uncertain.NodeID(rng.IntN(1000))
		v := uncertain.NodeID(rng.IntN(1000))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 1)
	}
	weights := make([]float64, g.NumEdges())
	for i := range weights {
		weights[i] = 1 + rng.Float64()*9
	}
	wg, err := New(g, weights)
	if err != nil {
		b.Fatal(err)
	}
	w := g.MostProbableWorld()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Dijkstra(w, 0)
	}
}
