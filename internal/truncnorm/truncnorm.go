// Package truncnorm samples the noise distribution R(sigma) used by the
// paper's perturbation schemes: the absolute value of a normal variable
// with mean 0 and standard deviation sigma, truncated to [0, 1]. Its
// density is proportional to the half-normal density on [0, 1].
package truncnorm

import (
	"math"
	"math/rand/v2"
)

// Sample draws one value from R(sigma): |N(0, sigma^2)| truncated to [0,1].
// sigma <= 0 returns 0 (a degenerate, noise-free draw).
func Sample(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 || math.IsNaN(sigma) {
		return 0
	}
	// Rejection from the half-normal. Acceptance probability is
	// P(|N(0,sigma^2)| <= 1) = erf(1/(sigma*sqrt(2))), which for the large
	// sigma regime can be small, so fall back to inverse-CDF sampling when
	// sigma is large.
	if sigma < 2 {
		for i := 0; i < 64; i++ {
			x := math.Abs(rng.NormFloat64() * sigma)
			if x <= 1 {
				return x
			}
		}
		// Extremely unlikely for sigma < 2; fall through to inverse CDF.
	}
	return inverseCDF(rng.Float64(), sigma)
}

// inverseCDF inverts the truncated half-normal CDF
// F(x) = erf(x/(sigma*sqrt2)) / erf(1/(sigma*sqrt2)) by bisection.
func inverseCDF(u, sigma float64) float64 {
	z := math.Erf(1 / (sigma * math.Sqrt2))
	if z <= 0 {
		// sigma so large the density is effectively uniform on [0,1].
		return u
	}
	target := u * z
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if math.Erf(mid/(sigma*math.Sqrt2)) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Mean returns E[R(sigma)], the mean of the [0,1]-truncated half-normal.
func Mean(sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	// E[X] = sigma*sqrt(2/pi)*(1 - exp(-1/(2 sigma^2))) / erf(1/(sigma sqrt2))
	z := math.Erf(1 / (sigma * math.Sqrt2))
	if z == 0 {
		return 0.5
	}
	return sigma * math.Sqrt(2/math.Pi) * (1 - math.Exp(-1/(2*sigma*sigma))) / z
}
