package truncnorm

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSampleDegenerate(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if got := Sample(rng, 0); got != 0 {
		t.Fatalf("Sample(sigma=0) = %v, want 0", got)
	}
	if got := Sample(rng, -1); got != 0 {
		t.Fatalf("Sample(sigma<0) = %v, want 0", got)
	}
	if got := Sample(rng, math.NaN()); got != 0 {
		t.Fatalf("Sample(NaN) = %v, want 0", got)
	}
}

func TestSampleInRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	for _, sigma := range []float64{0.01, 0.1, 0.5, 1, 2, 10, 1000} {
		for i := 0; i < 2000; i++ {
			x := Sample(rng, sigma)
			if x < 0 || x > 1 || math.IsNaN(x) {
				t.Fatalf("Sample(sigma=%v) = %v out of [0,1]", sigma, x)
			}
		}
	}
}

func TestSampleMeanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 7))
	for _, sigma := range []float64{0.05, 0.2, 0.5, 1, 3} {
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			sum += Sample(rng, sigma)
		}
		got := sum / n
		want := Mean(sigma)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("sigma=%v: empirical mean %.4f, analytic %.4f", sigma, got, want)
		}
	}
}

func TestLargeSigmaApproachesUniform(t *testing.T) {
	// As sigma -> inf the truncated half-normal flattens to U[0,1].
	if m := Mean(1e6); math.Abs(m-0.5) > 1e-3 {
		t.Fatalf("Mean(1e6) = %v, want ~0.5", m)
	}
	rng := rand.New(rand.NewPCG(11, 13))
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += Sample(rng, 1e6)
	}
	if got := sum / n; math.Abs(got-0.5) > 0.02 {
		t.Fatalf("empirical mean at huge sigma = %v, want ~0.5", got)
	}
}

func TestSmallSigmaConcentratesNearZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	const sigma = 0.02
	small := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if Sample(rng, sigma) < 3*sigma {
			small++
		}
	}
	// P(|N(0,sigma^2)| < 3 sigma) ~ 0.997.
	if frac := float64(small) / n; frac < 0.98 {
		t.Fatalf("only %.3f of draws within 3 sigma, want >= 0.98", frac)
	}
}

func TestInverseCDFMonotone(t *testing.T) {
	for _, sigma := range []float64{0.3, 1, 5} {
		prev := -1.0
		for u := 0.0; u <= 1.0; u += 0.05 {
			x := inverseCDF(u, sigma)
			if x < prev {
				t.Fatalf("inverseCDF not monotone at u=%v sigma=%v: %v < %v", u, sigma, x, prev)
			}
			if x < 0 || x > 1 {
				t.Fatalf("inverseCDF(%v, %v) = %v out of range", u, sigma, x)
			}
			prev = x
		}
	}
}

func TestMeanMonotoneInSigma(t *testing.T) {
	prev := 0.0
	for _, sigma := range []float64{0.01, 0.1, 0.3, 1, 3, 10} {
		m := Mean(sigma)
		if m <= prev {
			t.Fatalf("Mean(%v) = %v not greater than previous %v", sigma, m, prev)
		}
		prev = m
	}
}

func TestQuickSampleAlwaysValid(t *testing.T) {
	f := func(seed uint64, raw float64) bool {
		sigma := math.Abs(raw)
		rng := rand.New(rand.NewPCG(seed, 1))
		x := Sample(rng, sigma)
		return x >= 0 && x <= 1 && !math.IsNaN(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSample(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	b.Run("sigma=0.1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Sample(rng, 0.1)
		}
	})
	b.Run("sigma=5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Sample(rng, 5)
		}
	})
}
