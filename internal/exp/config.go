// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table I, Table II, Figures 3, 4, 8, 9,
// 10, 11) plus the ablation studies, on the scaled synthetic datasets
// documented in DESIGN.md.
package exp

import (
	"context"
	"math/rand/v2"

	"chameleon/internal/core"
	"chameleon/internal/gen"
	"chameleon/internal/obs"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// Config controls the fidelity/cost trade-off of an experiment run.
type Config struct {
	// Samples is the Monte Carlo budget for reliability estimation
	// (default 1000, the paper's setting).
	Samples int
	// MetricSamples is the world budget for distance/clustering metrics
	// (default 50).
	MetricSamples int
	// Pairs is the vertex-pair sample for discrepancy estimation
	// (default 20000).
	Pairs int
	// PaperKs are the obfuscation levels at paper scale; they are mapped
	// to each dataset via k/|V| scaling. Default {100, 150, 200, 250, 300}.
	PaperKs []int
	// Seed drives all randomness.
	Seed uint64
	// SamplingMode selects the world-drawing strategy for every reliability
	// estimator of the run (independent/antithetic/stratified/coupled; see
	// uncertain.SamplingMode).
	SamplingMode uncertain.SamplingMode
	// TargetRSE, when positive, switches the run's estimators to adaptive
	// sequential stopping at the given relative standard error (the fixed
	// Samples budget then becomes irrelevant; MaxSamples caps the draw).
	TargetRSE float64
	// MaxSamples caps adaptive sampling; 0 = reliability.DefaultMaxSamples.
	MaxSamples int
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
	// Quick switches to miniature datasets and reduced budgets; used by
	// tests and the -quick CLI flag.
	Quick bool
	// Obs, when non-nil, collects per-sweep-cell trace spans, Monte Carlo
	// sampling metrics and structured progress logs for the whole run.
	Obs *obs.Observer
	// Ctx, when non-nil, cancels the experiment cooperatively: sweeps stop
	// between cells, the σ-search inside a cell stops at GenObf attempt
	// boundaries, and Monte Carlo estimation stops at chunk boundaries.
	// Entry points return the context error; partially computed rows and
	// cells are discarded, never reported or checkpointed.
	Ctx context.Context
	// Cells, when non-nil, checkpoints sweeps at cell granularity: finished
	// (dataset, method, k) cells are replayed from the store instead of
	// recomputed, so an interrupted sweep resumes where it stopped with
	// results identical to an uninterrupted run.
	Cells *CellStore

	// prog tracks sweep-cell completion for the run.progress /
	// run.eta_seconds gauges. Installed by withDefaults; shared across the
	// by-value Config copies of one run because it is a pointer.
	prog *sweepProgress

	// cache memoizes sampled component labelings across the estimator calls
	// of one experiment (installed by withDefaults, so every exported entry
	// point gets one). The original graph of a sweep is re-labeled for every
	// (method, k) cell without it; with it the labeling is computed once per
	// estimator configuration and every later discrepancy call is a lookup.
	cache *reliability.LabelCache
}

func (c Config) withDefaults() Config {
	if c.cache == nil {
		c.cache = reliability.NewLabelCache()
	}
	if c.prog == nil {
		c.prog = &sweepProgress{}
	}
	if c.Samples <= 0 {
		if c.Quick {
			c.Samples = 200
		} else {
			c.Samples = 1000
		}
	}
	if c.MetricSamples <= 0 {
		if c.Quick {
			c.MetricSamples = 10
		} else {
			c.MetricSamples = 50
		}
	}
	if c.Pairs <= 0 {
		if c.Quick {
			c.Pairs = 2000
		} else {
			c.Pairs = 20000
		}
	}
	if len(c.PaperKs) == 0 {
		c.PaperKs = []int{100, 150, 200, 250, 300}
	}
	return c
}

// estimator builds a reliability estimator carrying the run's full
// sampling tuple (mode, adaptive target/cap). samples <= 0 means the
// configured budget; seedOff preserves each call site's historical seed
// offset so existing fixed-N runs replay unchanged.
func (c Config) estimator(samples int, seedOff uint64) reliability.Estimator {
	if samples <= 0 {
		samples = c.Samples
	}
	return reliability.Estimator{
		Samples: samples, Seed: c.Seed + seedOff, Workers: c.Workers,
		Obs: c.Obs, Cache: c.cache, Mode: c.SamplingMode,
		TargetRSE: c.TargetRSE, MaxSamples: c.MaxSamples, Ctx: c.Ctx,
	}
}

// withSampling threads the run's sampling tuple into a σ-search parameter
// set, so the searches inside sweep cells sample the same way the
// evaluation estimators do.
func (c Config) withSampling(p core.Params) core.Params {
	p.SamplingMode = c.SamplingMode
	p.TargetRSE = c.TargetRSE
	p.MaxSamples = c.MaxSamples
	return p
}

// ctx returns the run's cancellation context, Background when unset.
func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Datasets returns the evaluation datasets for this configuration: the
// scaled DBLP/BRIGHTKITE/PPI stand-ins, or miniatures in Quick mode.
func (c Config) Datasets() []gen.Dataset {
	if !c.Quick {
		return gen.Datasets()
	}
	return quickDatasets()
}

// quickDatasets are miniature versions of the three datasets preserving
// the topology family and probability profile, for fast tests and benches.
func quickDatasets() []gen.Dataset {
	return []gen.Dataset{
		{
			Name: "dblp-q", PaperName: "DBLP", PaperNodes: 824774,
			PaperEdges: 5566096, PaperMeanP: 0.46, PaperEps: 1e-4,
			Nodes: 400, Epsilon: 0.02, Ks: []int{5, 8, 10, 14, 18},
			Build: func(rng *rand.Rand) (*uncertain.Graph, error) {
				pa := gen.DiscreteProbs(
					[]float64{0.13, 0.28, 0.46, 0.64, 0.80},
					[]float64{0.15, 0.23, 0.27, 0.22, 0.13},
				)
				return gen.BarabasiAlbert(400, 3, pa, rng)
			},
		},
		{
			Name: "brightkite-q", PaperName: "BRIGHTKITE", PaperNodes: 58228,
			PaperEdges: 214078, PaperMeanP: 0.29, PaperEps: 1e-3,
			Nodes: 300, Epsilon: 0.03, Ks: []int{5, 8, 10, 14, 18},
			Build: func(rng *rand.Rand) (*uncertain.Graph, error) {
				return gen.BarabasiAlbert(300, 2, gen.SmallProbs(0.29), rng)
			},
		},
		{
			Name: "ppi-q", PaperName: "PPI", PaperNodes: 12420,
			PaperEdges: 397309, PaperMeanP: 0.29, PaperEps: 1e-2,
			Nodes: 200, Epsilon: 0.05, Ks: []int{5, 8, 10, 14, 18},
			Build: func(rng *rand.Rand) (*uncertain.Graph, error) {
				return gen.BarabasiAlbert(200, 8, gen.UniformProbs(0.02, 0.56), rng)
			},
		},
	}
}

// BuildDataset materializes one dataset deterministically from the
// configured seed.
func (c Config) BuildDataset(d gen.Dataset) (*uncertain.Graph, error) {
	rng := rand.New(rand.NewPCG(c.Seed, hashName(d.Name)))
	return d.Build(rng)
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
