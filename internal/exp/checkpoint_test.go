package exp

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"chameleon/internal/obs"
)

func ckptCfg() Config {
	return Config{
		Quick: true, Samples: 100, MetricSamples: 5, Pairs: 500,
		Seed: 3, PaperKs: []int{5, 8}, Workers: 2,
	}
}

// sameOutcome compares the deterministic fields of two runs (timings are
// wall-clock and legitimately differ between an original and a resumed
// sweep).
func sameOutcome(a, b Run) bool {
	return a.Dataset == b.Dataset && a.Method == b.Method && a.PaperK == b.PaperK &&
		a.K == b.K && a.EpsilonTilde == b.EpsilonTilde && a.Sigma == b.Sigma &&
		a.RelDiscrepancy == b.RelDiscrepancy && a.AvgDegreeErr == b.AvgDegreeErr &&
		a.AvgDistanceErr == b.AvgDistanceErr && a.ClusteringErr == b.ClusteringErr &&
		a.EffDiameterErr == b.EffDiameterErr && a.MaxDegreeErr == b.MaxDegreeErr &&
		a.Failed == b.Failed && a.FailReason == b.FailReason
}

// TestSweepResumeFromCellStore: cells computed before an "interrupt" are
// replayed from the store, and the resumed sweep's results are identical
// to an uninterrupted sweep.
func TestSweepResumeFromCellStore(t *testing.T) {
	c := ckptCfg()
	d := c.Datasets()[2] // ppi-q, the smallest quick dataset
	full, _, err := c.Sweep(d, []string{"RSME"})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 2 {
		t.Fatalf("sweep produced %d runs, want 2", len(full))
	}

	// "Interrupted" run: compute only the first cell into the store.
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	store, err := OpenCellStore(path, c)
	if err != nil {
		t.Fatal(err)
	}
	c1 := c
	c1.Cells = store
	g, err := c1.BuildDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	base := c1.MeasureBaseline(d, g)
	c1.RunCell(d, g, base, "RSME", 5)
	if store.Len() != 1 {
		t.Fatalf("store holds %d cells, want 1", store.Len())
	}

	// Resume: reopen the store (as a fresh process would) and sweep.
	store2, err := OpenCellStore(path, c)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	c2 := c
	c2.Cells = store2
	c2.Obs = o
	resumed, _, err := c2.Sweep(d, []string{"RSME"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(full) {
		t.Fatalf("resumed sweep produced %d runs, want %d", len(resumed), len(full))
	}
	for i := range full {
		if !sameOutcome(full[i], resumed[i]) {
			t.Errorf("run %d differs:\n full   %+v\n resumed %+v", i, full[i], resumed[i])
		}
	}
	if got := o.Registry().Snapshot().Counters["exp.cells_restored"]; got != 1 {
		t.Errorf("exp.cells_restored = %d, want 1", got)
	}

	// Finish clears the checkpoint.
	if err := c2.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("sweep checkpoint survived Finish (stat err %v)", err)
	}
}

// TestSweepCancelledCellNotStored: a sweep aborted by its context reports
// the context error and never checkpoints the interrupted cell.
func TestSweepCancelledCellNotStored(t *testing.T) {
	c := ckptCfg()
	d := c.Datasets()[2]
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	store, err := OpenCellStore(path, c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.Ctx = ctx
	c.Cells = store
	runs, _, err := c.Sweep(d, []string{"RSME"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if len(runs) != 0 {
		t.Fatalf("cancelled sweep reported %d runs, want 0", len(runs))
	}
	if store.Len() != 0 {
		t.Fatalf("cancelled sweep stored %d cells, want 0", store.Len())
	}
}

func TestOpenCellStoreRejectsMismatch(t *testing.T) {
	c := ckptCfg()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	store, err := OpenCellStore(path, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(Run{Dataset: "x", Method: "RSME", PaperK: 5}); err != nil {
		t.Fatal(err)
	}
	c2 := c
	c2.Seed++
	if _, err := OpenCellStore(path, c2); err == nil {
		t.Fatal("store written under a different seed must be rejected")
	}
	// The matching config still opens and sees the stored cell.
	reopened, err := OpenCellStore(path, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.Get("x", "RSME", 5); !ok {
		t.Fatal("stored cell lost on reopen")
	}
}

// TestNilCellStoreIsNoop: the nil-store path (no checkpointing configured)
// must be inert.
func TestNilCellStoreIsNoop(t *testing.T) {
	var s *CellStore
	if _, ok := s.Get("a", "b", 1); ok {
		t.Fatal("nil store returned a cell")
	}
	if err := s.Put(Run{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("nil store has nonzero length")
	}
}
