package exp

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// WriteTableI prints the dataset-characteristics table (Table I) for the
// configured datasets, including both the paper's numbers and the scaled
// stand-ins actually built.
func (c Config) WriteTableI(w io.Writer, bases []Baseline) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table I: dataset characteristics and privacy parameters")
	fmt.Fprintln(tw, "Graph\tNodes\tEdges\tEdgeProb\tTolerance\tPaperNodes\tPaperEdges\tPaperProb\tPaperTol")
	ds := c.Datasets()
	for i, b := range bases {
		d := ds[i]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%g\t%d\t%d\t%.2f\t%g\n",
			b.Dataset, b.Nodes, b.Edges, b.MeanProb, b.Epsilon,
			d.PaperNodes, d.PaperEdges, d.PaperMeanP, d.PaperEps)
	}
	tw.Flush()
}

// WriteTableII prints the compared-method capability matrix (Table II).
func WriteTableII(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table II: summary of compared methods")
	fmt.Fprintln(tw, "Method\tUncertainty-aware\tReliability-oriented\tAnonymity-oriented\tSource")
	fmt.Fprintln(tw, "Rep-An\t-\t-\tyes\t[29]+[7]")
	fmt.Fprintln(tw, "RSME\tyes\tyes\tyes\tthis work")
	fmt.Fprintln(tw, "ME\tyes\t-\tyes\tthis work")
	fmt.Fprintln(tw, "RS\tyes\tyes\t-\tthis work")
	tw.Flush()
}

// Histogram is a labeled bucketed count series for Figure 3.
type Histogram struct {
	Dataset string
	Labels  []string
	Counts  []int
}

// WriteHistogram renders a histogram as an aligned text table.
func WriteHistogram(w io.Writer, title string, hs []Histogram) {
	fmt.Fprintln(w, title)
	for _, h := range hs {
		fmt.Fprintf(w, "  %s:\n", h.Dataset)
		max := 0
		for _, c := range h.Counts {
			if c > max {
				max = c
			}
		}
		for i, c := range h.Counts {
			bar := ""
			if max > 0 {
				for j := 0; j < 40*c/max; j++ {
					bar += "#"
				}
			}
			fmt.Fprintf(w, "    %-12s %8d %s\n", h.Labels[i], c, bar)
		}
	}
}

// figureColumn selects one metric of a Run.
type figureColumn struct {
	id     string
	title  string
	metric func(Run) float64
}

var figureColumns = []figureColumn{
	{"fig8", "Figure 8: reliability preservation (relative discrepancy, lower is better)", func(r Run) float64 { return r.RelDiscrepancy }},
	{"fig9", "Figure 9: average node degree (relative error, lower is better)", func(r Run) float64 { return r.AvgDegreeErr }},
	{"fig10", "Figure 10: average distance (relative error, lower is better)", func(r Run) float64 { return r.AvgDistanceErr }},
	{"fig11", "Figure 11: clustering coefficient (relative error, lower is better)", func(r Run) float64 { return r.ClusteringErr }},
}

// WriteFigure renders one figure's metric as a dataset-grouped table with
// one row per k and one column per method.
func WriteFigure(w io.Writer, id string, runs []Run) error {
	var col *figureColumn
	for i := range figureColumns {
		if figureColumns[i].id == id {
			col = &figureColumns[i]
		}
	}
	if col == nil {
		return fmt.Errorf("exp: unknown figure %q", id)
	}

	type cellKey struct {
		dataset string
		k       int
		method  string
	}
	cells := make(map[cellKey]Run)
	datasets := []string{}
	ks := []int{}
	methods := []string{}
	seenD := map[string]bool{}
	seenK := map[int]bool{}
	seenM := map[string]bool{}
	for _, r := range runs {
		cells[cellKey{r.Dataset, r.PaperK, r.Method}] = r
		if !seenD[r.Dataset] {
			seenD[r.Dataset] = true
			datasets = append(datasets, r.Dataset)
		}
		if !seenK[r.PaperK] {
			seenK[r.PaperK] = true
			ks = append(ks, r.PaperK)
		}
		if !seenM[r.Method] {
			seenM[r.Method] = true
			methods = append(methods, r.Method)
		}
	}
	sort.Ints(ks)

	fmt.Fprintln(w, col.title)
	for _, d := range datasets {
		fmt.Fprintf(w, "  dataset %s:\n", d)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		header := "    k(paper)\tk(scaled)"
		for _, m := range methods {
			header += "\t" + m
		}
		fmt.Fprintln(tw, header)
		for _, k := range ks {
			kScaled := 0
			row := ""
			for _, m := range methods {
				r, ok := cells[cellKey{d, k, m}]
				if !ok {
					row += "\t-"
					continue
				}
				kScaled = r.K
				if r.Failed {
					row += "\tFAIL"
				} else {
					row += fmt.Sprintf("\t%.4f", col.metric(r))
				}
			}
			fmt.Fprintf(tw, "    %d\t%d%s\n", k, kScaled, row)
		}
		tw.Flush()
	}
	return nil
}

// Fig4Row is one point of the Figure 4 study: the structural distortion of
// Rep-An versus the Chameleon lower bound, per k, plus the
// extraction-only component.
type Fig4Row struct {
	Dataset        string
	PaperK         int
	K              int
	RepAn          float64 // Rep-An total distortion
	RepAnFailed    bool    // Rep-An found no (k,eps)-obfuscation
	Chameleon      float64 // RSME distortion (the achievable lower bound)
	ChamFailed     bool    // RSME found no (k,eps)-obfuscation
	ExtractionOnly float64 // distortion of the representative alone
}

// WriteFig4 renders the Figure 4 table.
func WriteFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Figure 4: structural distortion (avg reliability discrepancy ratio) of Rep-An vs Chameleon lower bound")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\tk(paper)\tk(scaled)\tRep-An\tChameleon(lower bound)\textraction-only")
	cell := func(v float64, failed bool) string {
		if failed {
			return "FAIL"
		}
		return fmt.Sprintf("%.4f", v)
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%s\t%s\t%.4f\n",
			r.Dataset, r.PaperK, r.K, cell(r.RepAn, r.RepAnFailed),
			cell(r.Chameleon, r.ChamFailed), r.ExtractionOnly)
	}
	tw.Flush()
}

// WriteRunsCSV emits the raw sweep grid as CSV for downstream plotting.
func WriteRunsCSV(w io.Writer, runs []Run) {
	fmt.Fprintln(w, "dataset,method,k_paper,k_scaled,epsilon_tilde,sigma,rel_discrepancy,avg_degree_err,avg_distance_err,clustering_err,eff_diameter_err,max_degree_err,failed,elapsed_ms,anon_ms,eval_ms")
	for _, r := range runs {
		fmt.Fprintf(w, "%s,%s,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%t,%d,%d,%d\n",
			r.Dataset, r.Method, r.PaperK, r.K, r.EpsilonTilde, r.Sigma,
			r.RelDiscrepancy, r.AvgDegreeErr, r.AvgDistanceErr, r.ClusteringErr,
			r.EffDiameterErr, r.MaxDegreeErr, r.Failed, r.Elapsed.Milliseconds(),
			r.AnonElapsed.Milliseconds(), r.EvalElapsed.Milliseconds())
	}
}

// WriteTiming renders the efficiency view of a sweep: median wall-clock
// per (dataset, method) cell — the paper evaluates "effectiveness and
// efficiency". A cell covers the full pipeline: the sigma search with all
// GenObf trials plus the utility measurement of the published graph.
func WriteTiming(w io.Writer, runs []Run) {
	type key struct{ dataset, method string }
	times := map[key][]float64{}
	anonTimes := map[key][]float64{}
	evalTimes := map[key][]float64{}
	var datasets, methods []string
	seenD, seenM := map[string]bool{}, map[string]bool{}
	for _, r := range runs {
		if r.Failed {
			continue
		}
		k := key{r.Dataset, r.Method}
		times[k] = append(times[k], float64(r.Elapsed.Milliseconds()))
		anonTimes[k] = append(anonTimes[k], float64(r.AnonElapsed.Milliseconds()))
		evalTimes[k] = append(evalTimes[k], float64(r.EvalElapsed.Milliseconds()))
		if !seenD[r.Dataset] {
			seenD[r.Dataset] = true
			datasets = append(datasets, r.Dataset)
		}
		if !seenM[r.Method] {
			seenM[r.Method] = true
			methods = append(methods, r.Method)
		}
	}
	median := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	fmt.Fprintln(w, "Efficiency: median wall-clock per sweep cell, total (anonymize/evaluate) ms")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "  dataset"
	for _, m := range methods {
		header += "\t" + m
	}
	fmt.Fprintln(tw, header)
	for _, d := range datasets {
		row := "  " + d
		for _, m := range methods {
			k := key{d, m}
			row += fmt.Sprintf("\t%.0f (%.0f/%.0f)",
				median(times[k]), median(anonTimes[k]), median(evalTimes[k]))
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()
}
