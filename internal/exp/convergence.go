package exp

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// ConvergenceRow is one sample-budget point of the Monte Carlo
// convergence study: the spread of the expected-connected-pairs estimate
// across independent repetitions.
type ConvergenceRow struct {
	Samples int
	Mean    float64 // mean estimate over repetitions
	StdDev  float64 // standard deviation over repetitions
	CV      float64 // coefficient of variation (stddev/mean)
}

// ConvergenceStudy validates the paper's sampling heuristic ("1000
// samples usually suffice to achieve accuracy convergence" [30]): it
// repeats the E[cc] estimation `reps` times at each budget and reports
// the estimator spread, which must shrink like 1/sqrt(N). Sampling runs
// with the given parallelism (0 = GOMAXPROCS).
func ConvergenceStudy(g *uncertain.Graph, budgets []int, reps int, seed uint64, workers int) []ConvergenceRow {
	if len(budgets) == 0 {
		budgets = []int{10, 100, 1000}
	}
	if reps <= 1 {
		reps = 10
	}
	rows := make([]ConvergenceRow, 0, len(budgets))
	for _, n := range budgets {
		estimates := make([]float64, reps)
		for r := 0; r < reps; r++ {
			est := reliability.Estimator{Samples: n, Seed: seed + uint64(r)*1000003, Workers: workers}
			estimates[r] = est.ExpectedConnectedPairs(g)
		}
		var mean float64
		for _, e := range estimates {
			mean += e
		}
		mean /= float64(reps)
		var ss float64
		for _, e := range estimates {
			d := e - mean
			ss += d * d
		}
		std := math.Sqrt(ss / float64(reps))
		row := ConvergenceRow{Samples: n, Mean: mean, StdDev: std}
		if mean != 0 {
			row.CV = std / mean
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteConvergence renders the convergence study.
func WriteConvergence(w io.Writer, rows []ConvergenceRow) {
	fmt.Fprintln(w, "Monte Carlo convergence ([30]'s 1000-sample heuristic): spread of the E[connected pairs] estimate")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  samples\tmean\tstddev\tCV")
	for _, r := range rows {
		fmt.Fprintf(tw, "  %d\t%.1f\t%.2f\t%.4f\n", r.Samples, r.Mean, r.StdDev, r.CV)
	}
	tw.Flush()
}
