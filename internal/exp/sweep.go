package exp

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/gen"
	"chameleon/internal/metrics"
	"chameleon/internal/obs"
	"chameleon/internal/reliability"
	"chameleon/internal/repan"
	"chameleon/internal/uncertain"
)

// Methods is the paper's comparison set (Table II), in reporting order.
var Methods = []string{"RSME", "RS", "ME", "Rep-An"}

// sweepProgress is the sweep-cell cursor behind the run.progress /
// run.eta_seconds gauges: total is the grid size claimed by the outermost
// entry point (SweepAll claims the full dataset grid before per-dataset
// Sweeps can claim just theirs), done counts finished cells — restored
// ones included, since replaying them is work the run no longer has to do.
type sweepProgress struct {
	total atomic.Int64
	done  atomic.Int64
}

// claimTotal installs the grid size if no outer scope has claimed one yet.
func (p *sweepProgress) claimTotal(total int) {
	if p != nil {
		p.total.CompareAndSwap(0, int64(total))
	}
}

// step marks one cell finished and republishes the gauges. The ETA is the
// mean observed cell cost (the exp.cell_seconds histogram) times the cells
// left; restored cells cost ~nothing, so the mean self-corrects as the
// sweep replays or computes.
func (p *sweepProgress) step(reg *obs.Registry) {
	if p == nil {
		return
	}
	// The cell count advances unconditionally — window() feeds the next
	// cell's Params whether or not metrics are being collected.
	done, total := p.done.Add(1), p.total.Load()
	if reg == nil || total <= 0 {
		return
	}
	if done > total {
		done = total
	}
	reg.Gauge(obs.ProgressGauge).Set(float64(done) / float64(total))
	h := reg.Histogram("exp.cell_seconds", obs.TimeBuckets)
	var eta float64
	if n := h.Count(); n > 0 {
		eta = h.Sum() / float64(n) * float64(total-done)
	}
	reg.Gauge(obs.ETAGauge).Set(eta)
}

// window returns the [base, base+span) slice of the progress bar the next
// cell occupies, for core.Params so the σ-search inside the cell advances
// the sweep-wide bar smoothly instead of saw-toothing its own 0→1.
func (p *sweepProgress) window() (base, span float64) {
	if p == nil {
		return 0, 0
	}
	total := p.total.Load()
	if total <= 0 {
		return 0, 0
	}
	return float64(p.done.Load()) / float64(total), 1 / float64(total)
}

// Run is one (dataset, method, k) cell of the evaluation sweep, carrying
// every metric the figures need.
type Run struct {
	Dataset string
	Method  string
	PaperK  int // k at paper scale
	K       int // k at dataset scale

	// Privacy outcome.
	EpsilonTilde float64
	Sigma        float64

	// Utility (Figures 8-11): relative errors against the original graph.
	RelDiscrepancy float64 // Fig 4/8: avg reliability discrepancy ratio
	AvgDegreeErr   float64 // Fig 9
	AvgDistanceErr float64 // Fig 10
	ClusteringErr  float64 // Fig 11
	EffDiameterErr float64 // supplementary node-separation metric
	MaxDegreeErr   float64 // supplementary degree metric
	Elapsed        time.Duration
	AnonElapsed    time.Duration // anonymization (sigma search) share of Elapsed
	EvalElapsed    time.Duration // utility-measurement share of Elapsed
	Failed         bool          // true when no (k,eps)-obfuscation was found
	FailReason     string        // error text when Failed
}

// Baseline summarizes the original graph's metric values for one dataset.
type Baseline struct {
	Dataset     string
	Nodes       int
	Edges       int
	MeanProb    float64
	Epsilon     float64
	AvgDegree   float64
	MaxDegree   float64
	AvgDistance float64
	EffDiameter float64
	Clustering  float64
}

// MeasureBaseline computes the original-graph metric values.
func (c Config) MeasureBaseline(d gen.Dataset, g *uncertain.Graph) Baseline {
	c = c.withDefaults()
	mo := metrics.Options{Samples: c.MetricSamples, Seed: c.Seed, Workers: c.Workers}
	dist := mo.Distances(g)
	return Baseline{
		Dataset:     d.Name,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		MeanProb:    g.MeanProb(),
		Epsilon:     d.Epsilon,
		AvgDegree:   metrics.AverageDegree(g),
		MaxDegree:   mo.MaxDegree(g),
		AvgDistance: dist.AverageDistance,
		EffDiameter: dist.EffectiveDiameter,
		Clustering:  mo.ClusteringCoefficient(g),
	}
}

// anonymizeWith dispatches to the right pipeline for a named method.
func anonymizeWith(ctx context.Context, method string, g *uncertain.Graph, p core.Params) (*core.Result, error) {
	switch method {
	case "RSME":
		p.Variant = core.RSME
		return core.AnonymizeContext(ctx, g, p)
	case "RS":
		p.Variant = core.RS
		return core.AnonymizeContext(ctx, g, p)
	case "ME":
		p.Variant = core.ME
		return core.AnonymizeContext(ctx, g, p)
	case "Rep-An":
		return repan.AnonymizeContext(ctx, g, p)
	default:
		return nil, fmt.Errorf("exp: unknown method %q", method)
	}
}

// RunCell anonymizes one (dataset, method, k) cell and measures all the
// figure metrics against the original graph and its baseline values.
func (c Config) RunCell(d gen.Dataset, g *uncertain.Graph, base Baseline, method string, paperK int) Run {
	c = c.withDefaults()
	k := d.KScale(paperK)
	if cached, ok := c.Cells.Get(d.Name, method, paperK); ok {
		// Cell seeds depend only on (config seed, method, k), so a stored
		// cell is exactly what recomputing it would produce.
		c.Obs.Registry().Counter("exp.cells_restored").Inc()
		c.Obs.Debug("exp: cell restored from sweep checkpoint",
			"dataset", d.Name, "method", method, "k", k)
		c.prog.step(c.Obs.Registry())
		return cached
	}
	run := Run{Dataset: d.Name, Method: method, PaperK: paperK, K: k}
	start := time.Now()
	cell := obs.NewSpan("sweep.cell")
	cell.SetAttr("dataset", d.Name)
	cell.SetAttr("method", method)
	cell.SetAttr("k", k)
	finish := func(run *Run) {
		run.Elapsed = time.Since(start)
		cell.SetAttr("failed", run.Failed)
		cell.End()
		c.Obs.AttachSpan(cell)
		c.Obs.Registry().Counter("exp.cells").Inc()
		if run.Failed {
			c.Obs.Registry().Counter("exp.cells_failed").Inc()
		}
		c.Obs.Registry().Histogram("exp.cell_seconds", obs.TimeBuckets).ObserveDuration(run.Elapsed)
		c.Obs.Debug("exp: cell done", "dataset", d.Name, "method", method,
			"k", k, "failed", run.Failed, "anon", run.AnonElapsed,
			"eval", run.EvalElapsed, "total", run.Elapsed)
		c.prog.step(c.Obs.Registry())
		if c.ctx().Err() == nil {
			// Only genuinely finished cells are checkpointed: a cell whose
			// failure is the cancellation itself must be recomputed on
			// resume, not replayed as a failure.
			if err := c.Cells.Put(*run); err != nil {
				c.Obs.Log("exp: sweep checkpoint write failed", "error", err.Error())
			}
		}
	}

	params := c.withSampling(core.Params{
		K:       k,
		Epsilon: d.Epsilon,
		Samples: c.Samples,
		Seed:    c.Seed ^ hashName(method) ^ uint64(paperK),
		Workers: c.Workers,
		Obs:     c.Obs,
		Cache:   c.cache,
		// The top of each k sweep sits near the feasibility edge at this
		// graph scale; extra trials and a wider sigma range keep the
		// randomized search from flaking there.
		Attempts:     8,
		MaxDoublings: 10,
	})
	params.ProgressBase, params.ProgressSpan = c.prog.window()
	res, err := anonymizeWith(c.ctx(), method, g, params)
	run.AnonElapsed = time.Since(start)
	if res != nil {
		cell.Adopt(res.Trace)
	}
	if err != nil {
		run.Failed = true
		run.FailReason = err.Error()
		finish(&run)
		return run
	}
	run.EpsilonTilde = res.EpsilonTilde
	run.Sigma = res.Sigma
	cell.SetAttr("sigma", res.Sigma)
	cell.SetAttr("epsilon_tilde", res.EpsilonTilde)

	evalStart := time.Now()
	eval := cell.StartChild("evaluate")
	pub := res.Graph
	est := c.estimator(0, 7)
	rel, err := est.RelativeDiscrepancy(g, pub, reliability.PairSample{Pairs: c.Pairs, Seed: c.Seed + 11})
	if err == nil {
		// Evaluation truncated by cancellation yields garbage metrics; fold
		// it into the failure path (finish skips checkpointing it).
		err = c.ctx().Err()
	}
	if err != nil {
		run.Failed = true
		run.FailReason = err.Error()
		run.EvalElapsed = time.Since(evalStart)
		eval.End()
		finish(&run)
		return run
	}
	run.RelDiscrepancy = rel

	mo := metrics.Options{Samples: c.MetricSamples, Seed: c.Seed + 13, Workers: c.Workers}
	run.AvgDegreeErr = metrics.RelativeError(base.AvgDegree, metrics.AverageDegree(pub))
	run.MaxDegreeErr = metrics.RelativeError(base.MaxDegree, mo.MaxDegree(pub))
	dist := mo.Distances(pub)
	run.AvgDistanceErr = metrics.RelativeError(base.AvgDistance, dist.AverageDistance)
	run.EffDiameterErr = metrics.RelativeError(base.EffDiameter, dist.EffectiveDiameter)
	run.ClusteringErr = metrics.RelativeError(base.Clustering, mo.ClusteringCoefficient(pub))
	run.EvalElapsed = time.Since(evalStart)
	eval.End()
	finish(&run)
	return run
}

// Sweep runs the full method x k grid for one dataset.
func (c Config) Sweep(d gen.Dataset, methods []string) ([]Run, Baseline, error) {
	c = c.withDefaults()
	c.prog.claimTotal(len(methods) * len(c.PaperKs))
	g, err := c.BuildDataset(d)
	if err != nil {
		return nil, Baseline{}, err
	}
	base := c.MeasureBaseline(d, g)
	var runs []Run
	for _, method := range methods {
		for _, paperK := range c.PaperKs {
			run := c.RunCell(d, g, base, method, paperK)
			if err := c.ctx().Err(); err != nil {
				// The interrupted cell's row is partial garbage; report only
				// the cells that finished.
				return runs, base, err
			}
			runs = append(runs, run)
		}
	}
	return runs, base, nil
}

// SweepAll runs the full evaluation grid over every dataset.
func (c Config) SweepAll(methods []string) ([]Run, []Baseline, error) {
	c = c.withDefaults() // one shared label cache across all datasets
	c.prog.claimTotal(len(c.Datasets()) * len(methods) * len(c.PaperKs))
	var allRuns []Run
	var bases []Baseline
	for _, d := range c.Datasets() {
		runs, base, err := c.Sweep(d, methods)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset %s: %w", d.Name, err)
		}
		allRuns = append(allRuns, runs...)
		bases = append(bases, base)
	}
	return allRuns, bases, nil
}

// Finish marks a fully completed experiment: the sweep checkpoint (if any)
// is cleared so a later invocation starts fresh instead of replaying.
func (c Config) Finish() error {
	return c.Cells.Clear()
}

// ExtractionOnlyDiscrepancy measures the reliability discrepancy caused by
// the representative-extraction step alone (Figure 4's discussion: "the
// sole representative extraction step produces high reliability errors").
func (c Config) ExtractionOnlyDiscrepancy(g *uncertain.Graph) (float64, error) {
	c = c.withDefaults()
	rep := repan.Representative(g)
	est := c.estimator(0, 7)
	disc, err := est.RelativeDiscrepancy(g, rep, reliability.PairSample{Pairs: c.Pairs, Seed: c.Seed + 11})
	if err == nil {
		err = c.ctx().Err()
	}
	return disc, err
}
