package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"chameleon/internal/core"
	"chameleon/internal/reliability"
)

// EpsilonRow is one point of the tolerance sweep: the noise/utility cost
// of tightening or loosening eps at a fixed obfuscation level k.
type EpsilonRow struct {
	Dataset string
	Epsilon float64
	K       int
	Failed  bool
	Sigma   float64
	RelDisc float64
}

// EpsilonSweep runs RSME on the first dataset at the mid-sweep k for a
// range of tolerance multipliers. The paper fixes eps per dataset
// (Table I); this extension maps the other axis of the privacy knob:
// tighter tolerances leave fewer skippable outliers and force more noise.
func (c Config) EpsilonSweep(multipliers []float64) ([]EpsilonRow, error) {
	c = c.withDefaults()
	if len(multipliers) == 0 {
		multipliers = []float64{0.5, 1, 2, 4}
	}
	d := c.Datasets()[0]
	g, err := c.BuildDataset(d)
	if err != nil {
		return nil, err
	}
	paperK := c.PaperKs[len(c.PaperKs)/2]
	k := d.KScale(paperK)
	est := c.estimator(0, 51)
	var rows []EpsilonRow
	for _, mult := range multipliers {
		if err := c.ctx().Err(); err != nil {
			return rows, err
		}
		eps := d.Epsilon * mult
		if eps >= 1 {
			eps = 0.99
		}
		params := c.withSampling(core.Params{
			K: k, Epsilon: eps, Samples: c.Samples,
			Seed: c.Seed, Workers: c.Workers, Attempts: 8, MaxDoublings: 10,
		})
		res, err := core.AnonymizeContext(c.ctx(), g, params)
		if err != nil {
			if cerr := c.ctx().Err(); cerr != nil {
				return rows, cerr
			}
			rows = append(rows, EpsilonRow{Dataset: d.Name, Epsilon: eps, K: k, Failed: true})
			continue
		}
		disc, err := est.RelativeDiscrepancy(g, res.Graph, reliability.PairSample{Pairs: c.Pairs, Seed: c.Seed + 52})
		if err == nil {
			err = c.ctx().Err()
		}
		if err != nil {
			return rows, err
		}
		rows = append(rows, EpsilonRow{
			Dataset: d.Name, Epsilon: eps, K: k, Sigma: res.Sigma, RelDisc: disc,
		})
	}
	return rows, nil
}

// WriteEpsilonSweep renders the tolerance sweep table.
func WriteEpsilonSweep(w io.Writer, rows []EpsilonRow) {
	fmt.Fprintln(w, "Ablation: tolerance sweep (RSME at the mid-sweep k; tighter eps forces more noise)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\teps\tk\tsigma\trel discrepancy")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(tw, "  %s\t%.4f\t%d\tFAIL\t-\n", r.Dataset, r.Epsilon, r.K)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%.4f\t%d\t%.3f\t%.4f\n", r.Dataset, r.Epsilon, r.K, r.Sigma, r.RelDisc)
	}
	tw.Flush()
}
