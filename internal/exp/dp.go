package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"chameleon/internal/core"
	"chameleon/internal/dpbaseline"
	"chameleon/internal/kdeg"
	"chameleon/internal/metrics"
	"chameleon/internal/reliability"
	"chameleon/internal/repan"
)

// DPRow compares one dataset's Chameleon release against the
// differential-privacy dK-1 release (related work, Section II).
type DPRow struct {
	Dataset string
	Method  string // "RSME" or "DP-1K(eps)"
	Failed  bool
	// RelDiscrepancy is the reliability loss; DegreeErr the average-degree
	// error; DegSeqErr the sorted-degree-sequence MAE.
	RelDiscrepancy float64
	DegreeErr      float64
	DegSeqErr      float64
}

// DPComparison contrasts the syntactic uncertainty-aware release (RSME at
// the mid-sweep k) with two conventional deterministic-graph releases:
// dK-1 differential privacy at two budgets, and Liu–Terzi k-degree
// anonymity [24] applied to the extracted representative. The related
// work claims DP graph publication is "still inadequate to provide
// desirable data utility"; this experiment quantifies the claim on the
// reliability metric while showing the baselines do fine on the statistic
// they actually protect (degrees).
func (c Config) DPComparison() ([]DPRow, error) {
	c = c.withDefaults()
	paperK := c.PaperKs[len(c.PaperKs)/2]
	est := c.estimator(0, 21)
	ps := reliability.PairSample{Pairs: c.Pairs, Seed: c.Seed + 22}
	var rows []DPRow
	for _, d := range c.Datasets() {
		if err := c.ctx().Err(); err != nil {
			return rows, err
		}
		g, err := c.BuildDataset(d)
		if err != nil {
			return nil, err
		}
		// Chameleon RSME.
		params := c.withSampling(core.Params{
			K: d.KScale(paperK), Epsilon: d.Epsilon, Samples: c.Samples,
			Seed: c.Seed, Workers: c.Workers, Attempts: 8, MaxDoublings: 10,
		})
		res, err := core.AnonymizeContext(c.ctx(), g, params)
		if err != nil {
			if cerr := c.ctx().Err(); cerr != nil {
				return rows, cerr
			}
			rows = append(rows, DPRow{Dataset: d.Name, Method: "RSME", Failed: true})
		} else {
			disc, err := est.RelativeDiscrepancy(g, res.Graph, ps)
			if err == nil {
				err = c.ctx().Err()
			}
			if err != nil {
				return rows, err
			}
			rows = append(rows, DPRow{
				Dataset:        d.Name,
				Method:         "RSME",
				RelDiscrepancy: disc,
				DegreeErr:      metrics.RelativeError(metrics.AverageDegree(g), metrics.AverageDegree(res.Graph)),
				DegSeqErr:      dpbaseline.DegreeSequenceError(g, res.Graph),
			})
		}

		// Liu-Terzi k-degree anonymity on the extracted representative.
		rep := repan.Representative(g)
		lt, err := kdeg.Anonymize(rep, d.KScale(paperK))
		if err != nil {
			rows = append(rows, DPRow{Dataset: d.Name, Method: "LT-kdeg", Failed: true})
		} else {
			disc, err := est.RelativeDiscrepancy(g, lt, ps)
			if err == nil {
				err = c.ctx().Err()
			}
			if err != nil {
				return rows, err
			}
			rows = append(rows, DPRow{
				Dataset:        d.Name,
				Method:         "LT-kdeg",
				RelDiscrepancy: disc,
				DegreeErr:      metrics.RelativeError(metrics.AverageDegree(g), metrics.AverageDegree(lt)),
				DegSeqErr:      dpbaseline.DegreeSequenceError(g, lt),
			})
		}

		// DP releases at a tight and a loose budget.
		for _, eps := range []float64{0.5, 2.0} {
			pub, err := dpbaseline.Release(g, dpbaseline.Params{Epsilon: eps, Seed: c.Seed + 23})
			if err != nil {
				return nil, err
			}
			disc, err := est.RelativeDiscrepancy(g, pub, ps)
			if err == nil {
				err = c.ctx().Err()
			}
			if err != nil {
				return rows, err
			}
			rows = append(rows, DPRow{
				Dataset:        d.Name,
				Method:         fmt.Sprintf("DP-1K(%.1f)", eps),
				RelDiscrepancy: disc,
				DegreeErr:      metrics.RelativeError(metrics.AverageDegree(g), metrics.AverageDegree(pub)),
				DegSeqErr:      dpbaseline.DegreeSequenceError(g, pub),
			})
		}
	}
	return rows, nil
}

// WriteDP renders the DP-comparison table.
func WriteDP(w io.Writer, rows []DPRow) {
	fmt.Fprintln(w, "Related-work comparison: RSME vs Liu-Terzi k-degree anonymity [24] vs dK-1 differential privacy")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\tmethod\trel discrepancy\tavg-degree err\tdegree-seq MAE")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(tw, "  %s\t%s\tFAIL\t-\t-\n", r.Dataset, r.Method)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%s\t%.4f\t%.4f\t%.3f\n",
			r.Dataset, r.Method, r.RelDiscrepancy, r.DegreeErr, r.DegSeqErr)
	}
	tw.Flush()
}
