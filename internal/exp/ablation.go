package exp

import (
	"fmt"
	"io"
	"math/rand/v2"
	"text/tabwriter"
	"time"

	"chameleon/internal/core"
	"chameleon/internal/gen"
	"chameleon/internal/privacy"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// ERRCostRow compares the wall-clock cost of the naive ERR estimator
// (Lemma 2: per-edge conditional sampling) against the sample-reuse
// estimator (Lemma 3, Algorithm 2) on one graph.
type ERRCostRow struct {
	Edges   int
	Samples int
	Naive   time.Duration
	Reuse   time.Duration
	Speedup float64
}

// ERRCostGraph builds a small Erdős–Rényi workload with m edges for the
// estimator-cost ablation.
func ERRCostGraph(m int, seed uint64) (*uncertain.Graph, error) {
	n := m / 2
	if n < 16 {
		n = 16
	}
	return gen.ErdosRenyi(n, m, gen.UniformProbs(0.1, 0.9), rand.New(rand.NewPCG(seed, 0xe44)))
}

// ERRCost measures both estimators on g with the given sample budget,
// sampling with the given parallelism (0 = GOMAXPROCS).
func ERRCost(g *uncertain.Graph, samples int, seed uint64, workers int) ERRCostRow {
	est := reliability.Estimator{Samples: samples, Seed: seed, Workers: workers}
	start := time.Now()
	est.EdgeRelevance(g)
	reuse := time.Since(start)
	start = time.Now()
	est.EdgeRelevanceNaive(g)
	naive := time.Since(start)
	row := ERRCostRow{Edges: g.NumEdges(), Samples: samples, Naive: naive, Reuse: reuse}
	if reuse > 0 {
		row.Speedup = float64(naive) / float64(reuse)
	}
	return row
}

// WriteERRCost renders the estimator-cost ablation table.
func WriteERRCost(w io.Writer, rows []ERRCostRow) {
	fmt.Fprintln(w, "Ablation (Lemma 2 vs Lemma 3): ERR estimation cost, naive vs sample-reuse")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  edges\tsamples\tnaive\treuse\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "  %d\t%d\t%v\t%v\t%.1fx\n", r.Edges, r.Samples, r.Naive, r.Reuse, r.Speedup)
	}
	tw.Flush()
}

// EntropyGainRow is one sigma point of the ME-vs-unguided perturbation
// ablation (Section V-F): the total degree-entropy gain each scheme buys
// for the same noise level.
type EntropyGainRow struct {
	Sigma         float64
	GuidedGain    float64 // ME: p~ = p + (1-2p) r
	UnguidedGain  float64 // random sign
	BaselineTotal float64 // sum_v H(d_v) of the original graph
}

// EntropyGain runs the ablation over a sigma sweep.
func EntropyGain(g *uncertain.Graph, sigmas []float64, seed uint64) []EntropyGainRow {
	base := privacy.TotalDegreeEntropy(g)
	rows := make([]EntropyGainRow, 0, len(sigmas))
	for i, sigma := range sigmas {
		guided := core.PerturbAll(g, true, sigma, 0.01, seed+uint64(i))
		unguided := core.PerturbAll(g, false, sigma, 0.01, seed+uint64(i))
		rows = append(rows, EntropyGainRow{
			Sigma:         sigma,
			GuidedGain:    privacy.TotalDegreeEntropy(guided) - base,
			UnguidedGain:  privacy.TotalDegreeEntropy(unguided) - base,
			BaselineTotal: base,
		})
	}
	return rows
}

// WriteEntropyGain renders the perturbation ablation table.
func WriteEntropyGain(w io.Writer, rows []EntropyGainRow) {
	fmt.Fprintln(w, "Ablation (Section V-F): degree-entropy gain per noise level, guided (ME) vs unguided")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  sigma\tME gain (bits)\tunguided gain (bits)\tbaseline total (bits)")
	for _, r := range rows {
		fmt.Fprintf(tw, "  %.3f\t%+.2f\t%+.2f\t%.2f\n", r.Sigma, r.GuidedGain, r.UnguidedGain, r.BaselineTotal)
	}
	tw.Flush()
}
