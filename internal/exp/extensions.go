package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"chameleon/internal/attack"
	"chameleon/internal/core"
	"chameleon/internal/knn"
	"chameleon/internal/reliability"
)

// AttackRow is one dataset's empirical privacy validation: the success of
// the Bayesian degree-knowledge adversary against the unprotected
// original and against each method's published graph.
type AttackRow struct {
	Dataset string
	Method  string // "original" for the unprotected baseline
	K       int
	Failed  bool
	// Adversary success statistics (see attack.Report).
	MeanPosterior float64
	Top1Rate      float64
	TopKRate      float64
	MeanRank      float64
}

// AttackExperiment attacks every method's output at the mid-sweep k. It
// is the empirical counterpart of the formal (k, eps)-obf check: success
// statistics must collapse toward the 1/k regime.
func (c Config) AttackExperiment() ([]AttackRow, error) {
	c = c.withDefaults()
	paperK := c.PaperKs[len(c.PaperKs)/2]
	var rows []AttackRow
	for _, d := range c.Datasets() {
		if err := c.ctx().Err(); err != nil {
			return rows, err
		}
		g, err := c.BuildDataset(d)
		if err != nil {
			return nil, err
		}
		k := d.KScale(paperK)
		base, err := attack.Simulate(g, g, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AttackRow{
			Dataset: d.Name, Method: "original", K: k,
			MeanPosterior: base.MeanPosterior, Top1Rate: base.Top1Rate,
			TopKRate: base.TopKRate, MeanRank: base.MeanRank,
		})
		for _, method := range Methods {
			params := c.withSampling(core.Params{
				K: k, Epsilon: d.Epsilon, Samples: c.Samples,
				Seed: c.Seed ^ hashName(method), Workers: c.Workers,
				Attempts: 8, MaxDoublings: 10,
			})
			res, err := anonymizeWith(c.ctx(), method, g, params)
			if err != nil {
				if cerr := c.ctx().Err(); cerr != nil {
					return rows, cerr
				}
				rows = append(rows, AttackRow{Dataset: d.Name, Method: method, K: k, Failed: true})
				continue
			}
			rep, err := attack.Simulate(g, res.Graph, k)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AttackRow{
				Dataset: d.Name, Method: method, K: k,
				MeanPosterior: rep.MeanPosterior, Top1Rate: rep.Top1Rate,
				TopKRate: rep.TopKRate, MeanRank: rep.MeanRank,
			})
		}
	}
	return rows, nil
}

// WriteAttack renders the attack-validation table.
func WriteAttack(w io.Writer, rows []AttackRow) {
	fmt.Fprintln(w, "Privacy validation: Bayesian degree-knowledge re-identification attack")
	fmt.Fprintln(w, "(random guessing: posterior = 1/|V|; k-obfuscation target: <= 1/k)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\tmethod\tk\tmean posterior\ttop-1 rate\ttop-k rate\tmean rank")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(tw, "  %s\t%s\t%d\tFAIL\t-\t-\t-\n", r.Dataset, r.Method, r.K)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%.4f\t%.4f\t%.4f\t%.1f\n",
			r.Dataset, r.Method, r.K, r.MeanPosterior, r.Top1Rate, r.TopKRate, r.MeanRank)
	}
	tw.Flush()
}

// KNNRow is one dataset's downstream-task utility probe: how much of the
// reliability k-NN structure each method's output retains.
type KNNRow struct {
	Dataset string
	Method  string
	K       int // anonymization k
	Failed  bool
	Score   float64 // mean Jaccard of top-10 reliability neighborhoods
}

// KNNExperiment measures reliability-kNN preservation per method at the
// mid-sweep k — the workload class ([30], [4], [38]) the paper's utility
// metric is designed to protect.
func (c Config) KNNExperiment() ([]KNNRow, error) {
	c = c.withDefaults()
	paperK := c.PaperKs[len(c.PaperKs)/2]
	est := c.estimator(c.Samples/2, 77)
	opts := knn.PreservationOptions{K: 10, Queries: 20, Seed: c.Seed + 78}
	var rows []KNNRow
	for _, d := range c.Datasets() {
		if err := c.ctx().Err(); err != nil {
			return rows, err
		}
		g, err := c.BuildDataset(d)
		if err != nil {
			return nil, err
		}
		k := d.KScale(paperK)
		for _, method := range Methods {
			params := c.withSampling(core.Params{
				K: k, Epsilon: d.Epsilon, Samples: c.Samples,
				Seed: c.Seed ^ hashName(method), Workers: c.Workers,
				Attempts: 8, MaxDoublings: 10,
			})
			res, err := anonymizeWith(c.ctx(), method, g, params)
			if err != nil {
				if cerr := c.ctx().Err(); cerr != nil {
					return rows, cerr
				}
				rows = append(rows, KNNRow{Dataset: d.Name, Method: method, K: k, Failed: true})
				continue
			}
			score, err := knn.PreservationScore(g, res.Graph, opts, est)
			if err == nil {
				err = c.ctx().Err()
			}
			if err != nil {
				return rows, err
			}
			rows = append(rows, KNNRow{Dataset: d.Name, Method: method, K: k, Score: score})
		}
	}
	return rows, nil
}

// WriteKNN renders the kNN-preservation table.
func WriteKNN(w io.Writer, rows []KNNRow) {
	fmt.Fprintln(w, "Downstream utility: reliability k-NN preservation (mean Jaccard of top-10 neighborhoods, higher is better)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\tmethod\tk\tpreservation")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(tw, "  %s\t%s\t%d\tFAIL\n", r.Dataset, r.Method, r.K)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%.3f\n", r.Dataset, r.Method, r.K, r.Score)
	}
	tw.Flush()
}

// CSweepRow is one point of the candidate-budget ablation: the effect of
// the size multiplier c on feasibility, the chosen noise level and the
// utility cost.
type CSweepRow struct {
	Dataset string
	C       float64
	K       int
	Failed  bool
	Sigma   float64
	RelDisc float64
}

// CSweepAblation runs RSME on the first dataset at the top-of-sweep k for
// a range of candidate multipliers. Larger c admits more injection
// candidates: harder k values become feasible and less noise per edge is
// needed, at the cost of touching more vertex pairs.
func (c Config) CSweepAblation(multipliers []float64) ([]CSweepRow, error) {
	c = c.withDefaults()
	if len(multipliers) == 0 {
		multipliers = []float64{1.1, 1.5, 2.0, 3.0}
	}
	d := c.Datasets()[0]
	g, err := c.BuildDataset(d)
	if err != nil {
		return nil, err
	}
	paperK := c.PaperKs[len(c.PaperKs)-1]
	k := d.KScale(paperK)
	est := c.estimator(0, 7)
	var rows []CSweepRow
	for _, mult := range multipliers {
		if err := c.ctx().Err(); err != nil {
			return rows, err
		}
		params := c.withSampling(core.Params{
			K: k, Epsilon: d.Epsilon, Samples: c.Samples,
			Seed: c.Seed, Workers: c.Workers, SizeMultiplier: mult,
			Attempts: 8, MaxDoublings: 10,
		})
		res, err := core.AnonymizeContext(c.ctx(), g, params)
		if err != nil {
			if cerr := c.ctx().Err(); cerr != nil {
				return rows, cerr
			}
			rows = append(rows, CSweepRow{Dataset: d.Name, C: mult, K: k, Failed: true})
			continue
		}
		disc, err := est.RelativeDiscrepancy(g, res.Graph, reliability.PairSample{Pairs: c.Pairs, Seed: c.Seed + 11})
		if err == nil {
			err = c.ctx().Err()
		}
		if err != nil {
			return rows, err
		}
		rows = append(rows, CSweepRow{Dataset: d.Name, C: mult, K: k, Sigma: res.Sigma, RelDisc: disc})
	}
	return rows, nil
}

// WriteCSweep renders the candidate-budget ablation table.
func WriteCSweep(w io.Writer, rows []CSweepRow) {
	fmt.Fprintln(w, "Ablation: candidate-set multiplier c (RSME at the top-of-sweep k)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\tc\tk\tsigma\trel discrepancy")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(tw, "  %s\t%.1f\t%d\tFAIL\t-\n", r.Dataset, r.C, r.K)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%.1f\t%d\t%.3f\t%.4f\n", r.Dataset, r.C, r.K, r.Sigma, r.RelDisc)
	}
	tw.Flush()
}
