package exp

import (
	"bytes"
	"strings"
	"testing"

	"chameleon/internal/obs"
)

func quickCfg() Config {
	return Config{Quick: true, Seed: 7, Samples: 100, MetricSamples: 5, Pairs: 500}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Samples != 1000 || c.MetricSamples != 50 || c.Pairs != 20000 {
		t.Fatalf("full defaults wrong: %+v", c)
	}
	if len(c.PaperKs) != 5 || c.PaperKs[0] != 100 || c.PaperKs[4] != 300 {
		t.Fatalf("PaperKs = %v", c.PaperKs)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Samples != 200 || q.MetricSamples != 10 || q.Pairs != 2000 {
		t.Fatalf("quick defaults wrong: %+v", q)
	}
}

func TestDatasetsSelection(t *testing.T) {
	full := Config{}.Datasets()
	quick := Config{Quick: true}.Datasets()
	if len(full) != 3 || len(quick) != 3 {
		t.Fatalf("want 3 datasets each, got %d/%d", len(full), len(quick))
	}
	if full[0].Name != "dblp-s" || quick[0].Name != "dblp-q" {
		t.Fatalf("unexpected names %s / %s", full[0].Name, quick[0].Name)
	}
	for _, d := range quick {
		if d.Nodes > 500 {
			t.Fatalf("quick dataset %s too large: %d nodes", d.Name, d.Nodes)
		}
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	c := quickCfg()
	d := c.Datasets()[0]
	g1, err := c.BuildDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.BuildDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Fatal("BuildDataset must be deterministic for a fixed seed")
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("abc") != hashName("abc") {
		t.Fatal("hashName must be stable")
	}
	if hashName("abc") == hashName("abd") {
		t.Fatal("hashName should distinguish close strings")
	}
}

func TestMeasureBaseline(t *testing.T) {
	c := quickCfg()
	d := c.Datasets()[0]
	g, err := c.BuildDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	b := c.MeasureBaseline(d, g)
	if b.Nodes != g.NumNodes() || b.Edges != g.NumEdges() {
		t.Fatalf("baseline shape wrong: %+v", b)
	}
	if b.AvgDegree <= 0 || b.AvgDistance <= 0 || b.MaxDegree <= 0 {
		t.Fatalf("baseline metrics should be positive: %+v", b)
	}
}

func TestRunCellSuccess(t *testing.T) {
	c := quickCfg()
	d := c.Datasets()[0]
	g, err := c.BuildDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	base := c.MeasureBaseline(d, g)
	run := c.RunCell(d, g, base, "RSME", 100)
	if run.Failed {
		t.Fatalf("RSME at the smallest k should succeed: %s", run.FailReason)
	}
	if run.K != d.KScale(100) {
		t.Fatalf("K = %d, want %d", run.K, d.KScale(100))
	}
	if run.EpsilonTilde > d.Epsilon {
		t.Fatalf("eps~ %v > eps %v", run.EpsilonTilde, d.Epsilon)
	}
	if run.RelDiscrepancy < 0 {
		t.Fatalf("negative discrepancy %v", run.RelDiscrepancy)
	}
}

func TestRunCellUnknownMethod(t *testing.T) {
	c := quickCfg()
	d := c.Datasets()[0]
	g, err := c.BuildDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	base := Baseline{}
	run := c.RunCell(d, g, base, "bogus", 100)
	if !run.Failed || !strings.Contains(run.FailReason, "unknown method") {
		t.Fatalf("unknown method should fail the cell: %+v", run)
	}
}

func TestWriteTableII(t *testing.T) {
	var buf bytes.Buffer
	WriteTableII(&buf)
	out := buf.String()
	for _, want := range []string{"Rep-An", "RSME", "ME", "RS", "this work"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTableI(t *testing.T) {
	c := quickCfg()
	bases := []Baseline{
		{Dataset: "dblp-q", Nodes: 400, Edges: 1200, MeanProb: 0.45, Epsilon: 0.02},
		{Dataset: "brightkite-q", Nodes: 300, Edges: 600, MeanProb: 0.3, Epsilon: 0.03},
		{Dataset: "ppi-q", Nodes: 200, Edges: 1500, MeanProb: 0.29, Epsilon: 0.05},
	}
	var buf bytes.Buffer
	c.WriteTableI(&buf, bases)
	out := buf.String()
	if !strings.Contains(out, "dblp-q") || !strings.Contains(out, "824774") {
		t.Fatalf("Table I should carry scaled and paper numbers:\n%s", out)
	}
}

func TestFig3Histograms(t *testing.T) {
	c := quickCfg()
	probs, degs, err := c.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 3 || len(degs) != 3 {
		t.Fatalf("want 3 histograms each, got %d/%d", len(probs), len(degs))
	}
	g, err := c.BuildDataset(c.Datasets()[0])
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, n := range probs[0].Counts {
		total += n
	}
	if total != g.NumEdges() {
		t.Fatalf("prob histogram mass %d != edges %d", total, g.NumEdges())
	}
	var nodes int
	for _, n := range degs[0].Counts {
		nodes += n
	}
	if nodes != g.NumNodes() {
		t.Fatalf("degree histogram mass %d != nodes %d", nodes, g.NumNodes())
	}
}

func TestWriteHistogram(t *testing.T) {
	var buf bytes.Buffer
	WriteHistogram(&buf, "test title", []Histogram{
		{Dataset: "x", Labels: []string{"a", "b"}, Counts: []int{1, 3}},
	})
	out := buf.String()
	if !strings.Contains(out, "test title") || !strings.Contains(out, "###") {
		t.Fatalf("histogram rendering:\n%s", out)
	}
}

func TestWriteFigure(t *testing.T) {
	runs := []Run{
		{Dataset: "d1", Method: "RSME", PaperK: 100, K: 5, RelDiscrepancy: 0.01},
		{Dataset: "d1", Method: "Rep-An", PaperK: 100, K: 5, RelDiscrepancy: 0.5},
		{Dataset: "d1", Method: "RSME", PaperK: 300, K: 18, Failed: true},
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, "fig8", runs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"d1", "0.0100", "0.5000", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
	if err := WriteFigure(&buf, "nope", runs); err == nil {
		t.Fatal("unknown figure id should error")
	}
	for _, id := range []string{"fig9", "fig10", "fig11"} {
		if err := WriteFigure(&buf, id, runs); err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
	}
}

func TestWriteFig4(t *testing.T) {
	rows := []Fig4Row{{Dataset: "d", PaperK: 100, K: 5, RepAn: 0.4, Chameleon: 0.02, ExtractionOnly: 0.3}}
	var buf bytes.Buffer
	WriteFig4(&buf, rows)
	if !strings.Contains(buf.String(), "0.4000") || !strings.Contains(buf.String(), "0.0200") {
		t.Fatalf("fig4 output:\n%s", buf.String())
	}
}

func TestWriteRunsCSV(t *testing.T) {
	runs := []Run{{Dataset: "d", Method: "ME", PaperK: 100, K: 5, RelDiscrepancy: 0.25}}
	var buf bytes.Buffer
	WriteRunsCSV(&buf, runs)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV should have header + 1 row, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "d,ME,100,5,") {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestERRCostGraphAndCost(t *testing.T) {
	g, err := ERRCostGraph(80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 80 {
		t.Fatalf("edges = %d, want 80", g.NumEdges())
	}
	row := ERRCost(g, 30, 1, 1)
	if row.Edges != 80 || row.Samples != 30 {
		t.Fatalf("row = %+v", row)
	}
	if row.Speedup <= 1 {
		t.Fatalf("reuse estimator should be faster than naive, speedup = %v", row.Speedup)
	}
	var buf bytes.Buffer
	WriteERRCost(&buf, []ERRCostRow{row})
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("ERR cost table:\n%s", buf.String())
	}
}

func TestEntropyGain(t *testing.T) {
	c := quickCfg()
	g, err := c.BuildDataset(c.Datasets()[0])
	if err != nil {
		t.Fatal(err)
	}
	rows := EntropyGain(g, []float64{0.05, 0.2}, 3)
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.BaselineTotal <= 0 {
			t.Fatalf("baseline entropy should be positive: %+v", r)
		}
	}
	// At the larger sigma the guided scheme must outgain the unguided one.
	if rows[1].GuidedGain <= rows[1].UnguidedGain {
		t.Fatalf("ME gain %v should beat unguided %v at sigma=0.2",
			rows[1].GuidedGain, rows[1].UnguidedGain)
	}
	var buf bytes.Buffer
	WriteEntropyGain(&buf, rows)
	if !strings.Contains(buf.String(), "ME gain") {
		t.Fatalf("entropy gain table:\n%s", buf.String())
	}
}

func TestExtractionOnlyDiscrepancy(t *testing.T) {
	c := quickCfg()
	g, err := c.BuildDataset(c.Datasets()[0])
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.ExtractionOnlyDiscrepancy(g)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("representative extraction should cost reliability, got %v", d)
	}
}

// TestQuickSweepShape is the integration test for the paper's headline
// claim: on every quick dataset, at the smallest k, Chameleon (RSME)
// must preserve reliability strictly better than Rep-An.
func TestQuickSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	c := quickCfg()
	c.PaperKs = []int{100}
	for _, d := range c.Datasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			g, err := c.BuildDataset(d)
			if err != nil {
				t.Fatal(err)
			}
			base := c.MeasureBaseline(d, g)
			rsme := c.RunCell(d, g, base, "RSME", 100)
			repan := c.RunCell(d, g, base, "Rep-An", 100)
			if rsme.Failed {
				t.Fatalf("RSME failed: %s", rsme.FailReason)
			}
			if repan.Failed {
				t.Fatalf("Rep-An failed: %s", repan.FailReason)
			}
			if rsme.RelDiscrepancy >= repan.RelDiscrepancy {
				t.Fatalf("paper shape violated: RSME discrepancy %v >= Rep-An %v",
					rsme.RelDiscrepancy, repan.RelDiscrepancy)
			}
		})
	}
}

func TestSweepAllSingleCell(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	c := quickCfg()
	c.PaperKs = []int{100}
	runs, bases, err := c.SweepAll([]string{"ME"})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 || len(bases) != 3 {
		t.Fatalf("got %d runs / %d baselines, want 3 / 3", len(runs), len(bases))
	}
	for _, r := range runs {
		if r.Method != "ME" {
			t.Fatalf("unexpected method %q", r.Method)
		}
		if r.Failed {
			t.Fatalf("%s: ME at smallest k should succeed: %s", r.Dataset, r.FailReason)
		}
		if r.Elapsed <= 0 {
			t.Fatal("elapsed time should be recorded")
		}
	}
	var buf bytes.Buffer
	c.WriteTableI(&buf, bases)
	if !strings.Contains(buf.String(), "dblp-q") {
		t.Fatalf("table I:\n%s", buf.String())
	}
}

func TestWriteFigureMissingCells(t *testing.T) {
	runs := []Run{
		{Dataset: "d1", Method: "RSME", PaperK: 100, K: 5, RelDiscrepancy: 0.01},
		{Dataset: "d1", Method: "Rep-An", PaperK: 300, K: 18, RelDiscrepancy: 0.5},
	}
	var buf bytes.Buffer
	if err := WriteFigure(&buf, "fig8", runs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Fatalf("missing cells should render as '-':\n%s", buf.String())
	}
}

func TestWriteTiming(t *testing.T) {
	runs := []Run{
		{Dataset: "d", Method: "RSME", Elapsed: 120 * 1e6}, // 120ms in ns
		{Dataset: "d", Method: "RSME", Elapsed: 240 * 1e6},
		{Dataset: "d", Method: "Rep-An", Elapsed: 480 * 1e6},
		{Dataset: "d", Method: "ME", Failed: true},
	}
	var buf bytes.Buffer
	WriteTiming(&buf, runs)
	out := buf.String()
	if !strings.Contains(out, "240") || !strings.Contains(out, "480") {
		t.Fatalf("timing table:\n%s", out)
	}
	if strings.Contains(out, "ME\t") && strings.Contains(out, "FAIL") {
		t.Fatalf("failed cells should simply be absent:\n%s", out)
	}
}

// TestSweepProgressGauges: a finished sweep leaves run.progress at 1 with
// a zero ETA, and each cell's σ-search maps its fraction into the cell's
// slice of the bar (the windowed Params) rather than resetting it.
func TestSweepProgressGauges(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	c := quickCfg()
	c.PaperKs = []int{100}
	c.Obs = obs.NewObserver()
	runs, _, err := c.SweepAll([]string{"ME"})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	snap := c.Obs.Registry().Snapshot()
	if p := snap.Gauges[obs.ProgressGauge]; p != 1 {
		t.Fatalf("%s = %v after a full sweep, want 1", obs.ProgressGauge, p)
	}
	if eta := snap.Gauges[obs.ETAGauge]; eta != 0 {
		t.Fatalf("%s = %v after a full sweep, want 0", obs.ETAGauge, eta)
	}
}

// TestSweepProgressWindow: the per-cell Params window advances with
// completed cells so in-cell σ-search progress lands inside the cell's
// slice of the sweep-wide bar.
func TestSweepProgressWindow(t *testing.T) {
	c := quickCfg().withDefaults()
	c.prog.claimTotal(4)
	base, span := c.prog.window()
	if base != 0 || span != 0.25 {
		t.Fatalf("first window = (%v, %v), want (0, 0.25)", base, span)
	}
	c.prog.step(c.Obs.Registry()) // nil registry: counts still advance
	c.prog.step(nil)
	base, span = c.prog.window()
	if base != 0.5 || span != 0.25 {
		t.Fatalf("window after 2 cells = (%v, %v), want (0.5, 0.25)", base, span)
	}
	// An unclaimed or nil progress tracker degrades to the "no window"
	// mapping that hands the whole bar to the σ-search.
	var nilProg *sweepProgress
	if b, s := nilProg.window(); b != 0 || s != 0 {
		t.Fatalf("nil window = (%v, %v), want (0, 0)", b, s)
	}
	nilProg.step(nil)
	nilProg.claimTotal(3)
}
