package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"chameleon/internal/centrality"
	"chameleon/internal/core"
	"chameleon/internal/repan"
	"chameleon/internal/uncertain"
)

// CentralityRow reports how much of the expected-betweenness structure a
// method's release preserves: the overlap of the top-K most central
// vertices before and after.
type CentralityRow struct {
	Dataset string
	Method  string
	K       int // anonymization k
	Failed  bool
	Overlap float64 // top-20 expected-betweenness overlap, 1 = intact
}

// CentralityExperiment measures expected-betweenness preservation per
// method at the mid-sweep k. Brokerage structure is what community and
// influence analyses read off a graph; degree-preserving noise can still
// destroy it.
func (c Config) CentralityExperiment() ([]CentralityRow, error) {
	c = c.withDefaults()
	paperK := c.PaperKs[len(c.PaperKs)/2]
	const topK = 20
	opts := centrality.Options{Samples: 30, Seed: c.Seed + 31, Workers: c.Workers}
	var rows []CentralityRow
	for _, d := range c.Datasets() {
		if err := c.ctx().Err(); err != nil {
			return rows, err
		}
		g, err := c.BuildDataset(d)
		if err != nil {
			return nil, err
		}
		base := centrality.Expected(g, opts)
		k := d.KScale(paperK)
		for _, method := range Methods {
			params := c.withSampling(core.Params{
				K: k, Epsilon: d.Epsilon, Samples: c.Samples,
				Seed: c.Seed ^ hashName(method), Workers: c.Workers,
				Attempts: 8, MaxDoublings: 10,
			})
			res, err := anonymizeWith(c.ctx(), method, g, params)
			if err != nil {
				if cerr := c.ctx().Err(); cerr != nil {
					return rows, cerr
				}
				rows = append(rows, CentralityRow{Dataset: d.Name, Method: method, K: k, Failed: true})
				continue
			}
			pub := centrality.Expected(res.Graph, opts)
			rows = append(rows, CentralityRow{
				Dataset: d.Name, Method: method, K: k,
				Overlap: centrality.TopKOverlap(base, pub, topK),
			})
		}
	}
	return rows, nil
}

// WriteCentrality renders the centrality-preservation table.
func WriteCentrality(w io.Writer, rows []CentralityRow) {
	fmt.Fprintln(w, "Downstream utility: expected-betweenness preservation (top-20 central-vertex overlap, higher is better)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\tmethod\tk\toverlap")
	for _, r := range rows {
		if r.Failed {
			fmt.Fprintf(tw, "  %s\t%s\t%d\tFAIL\n", r.Dataset, r.Method, r.K)
			continue
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%.2f\n", r.Dataset, r.Method, r.K, r.Overlap)
	}
	tw.Flush()
}

// ExtractionRow compares representative extractors on both objectives:
// the degree fit (ADR's target) and the betweenness fit (ABM's target).
type ExtractionRow struct {
	Dataset   string
	Extractor string
	DegreeFit float64 // sum_v |deg_rep - E[deg]| (lower is better)
	BetwFit   float64 // sum_v |bc_rep - E[bc]| (lower is better)
}

// ExtractionAblation contrasts the most-probable world with the ADR and
// ABM refinements on the first dataset — the [29] design space the
// Rep-An baseline builds on.
func (c Config) ExtractionAblation() ([]ExtractionRow, error) {
	c = c.withDefaults()
	d := c.Datasets()[0]
	g, err := c.BuildDataset(d)
	if err != nil {
		return nil, err
	}
	abmOpts := repan.ABMOptions{Samples: 20, Seed: c.Seed + 41, Workers: c.Workers}

	mp := uncertain.New(g.NumNodes())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.P >= 0.5 {
			mp.MustAddEdge(e.U, e.V, 1)
		}
	}
	variants := []struct {
		name string
		rep  *uncertain.Graph
	}{
		{"most-probable", mp},
		{"ADR", repan.Representative(g)},
		{"ABM", repan.RepresentativeABM(g, abmOpts)},
	}
	var rows []ExtractionRow
	for _, v := range variants {
		rows = append(rows, ExtractionRow{
			Dataset:   d.Name,
			Extractor: v.name,
			DegreeFit: repan.DegreeDiscrepancy(g, v.rep),
			BetwFit:   repan.BetweennessDiscrepancy(g, v.rep, abmOpts),
		})
	}
	return rows, nil
}

// WriteExtraction renders the extractor ablation table.
func WriteExtraction(w io.Writer, rows []ExtractionRow) {
	fmt.Fprintln(w, "Ablation: representative extractors ([29] design space), fit to the uncertain graph's expectations")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  dataset\textractor\tdegree fit (sum |err|)\tbetweenness fit (sum |err|)")
	for _, r := range rows {
		fmt.Fprintf(tw, "  %s\t%s\t%.1f\t%.1f\n", r.Dataset, r.Extractor, r.DegreeFit, r.BetwFit)
	}
	tw.Flush()
}
