package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"chameleon/internal/atomicfile"
	"chameleon/internal/uncertain"
)

// CellStoreVersion is the on-disk sweep-checkpoint format version.
const CellStoreVersion = 1

// cellStoreFile is the persisted form of a CellStore: a config echo used
// to reject resumption under a different configuration, plus the finished
// cells keyed by "dataset/method/k<paperK>".
type cellStoreFile struct {
	Version       int    `json:"version"`
	Seed          uint64 `json:"seed"`
	Samples       int    `json:"samples"`
	MetricSamples int    `json:"metric_samples"`
	Pairs         int    `json:"pairs"`
	Quick         bool   `json:"quick"`
	// Sampling tuple (ISSUE 7). Older files carry the zero values, which
	// decode as (independent, fixed budget) — exactly how they were
	// produced — so no version bump is needed.
	SamplingMode string         `json:"sampling_mode,omitempty"`
	TargetRSE    float64        `json:"target_rse,omitempty"`
	MaxSamples   int            `json:"max_samples,omitempty"`
	Cells        map[string]Run `json:"cells"`
}

// CellStore checkpoints an evaluation sweep at cell granularity. Every
// (dataset, method, k) cell is independently deterministic — its Params
// seed is derived from the config seed, the method name and k alone — so
// a sweep interrupted between cells and resumed later reproduces exactly
// the runs an uninterrupted sweep would have produced: finished cells are
// replayed from the store, unfinished ones are recomputed from their seeds.
//
// The store is written atomically after every finished cell; a cell that
// failed because the run was cancelled is never stored (the caller gates
// Put on its context). A CellStore is safe for concurrent use.
type CellStore struct {
	mu    sync.Mutex
	path  string
	file  cellStoreFile
	dirty bool
}

// OpenCellStore loads the sweep checkpoint at path, creating a fresh one
// when the file does not exist. A checkpoint written under a different
// seed or fidelity configuration is rejected: silently mixing cells from
// two configurations would corrupt the sweep.
func OpenCellStore(path string, c Config) (*CellStore, error) {
	c = c.withDefaults()
	want := cellStoreFile{
		Version:       CellStoreVersion,
		Seed:          c.Seed,
		Samples:       c.Samples,
		MetricSamples: c.MetricSamples,
		Pairs:         c.Pairs,
		Quick:         c.Quick,
		SamplingMode:  samplingModeEcho(c.SamplingMode),
		TargetRSE:     c.TargetRSE,
		MaxSamples:    c.MaxSamples,
		Cells:         make(map[string]Run),
	}
	s := &CellStore{path: path, file: want}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("exp: reading sweep checkpoint: %w", err)
	}
	var got cellStoreFile
	if err := json.Unmarshal(data, &got); err != nil {
		return nil, fmt.Errorf("exp: parsing sweep checkpoint %s: %w", path, err)
	}
	if got.Version != CellStoreVersion {
		return nil, fmt.Errorf("exp: sweep checkpoint %s has format version %d, this build reads %d", path, got.Version, CellStoreVersion)
	}
	if got.Seed != want.Seed || got.Samples != want.Samples ||
		got.MetricSamples != want.MetricSamples || got.Pairs != want.Pairs ||
		got.Quick != want.Quick || got.SamplingMode != want.SamplingMode ||
		got.TargetRSE != want.TargetRSE || got.MaxSamples != want.MaxSamples {
		return nil, fmt.Errorf("exp: sweep checkpoint %s was written under a different configuration (seed/samples/pairs/quick/sampling mismatch)", path)
	}
	if got.Cells == nil {
		got.Cells = make(map[string]Run)
	}
	s.file = got
	return s, nil
}

// samplingModeEcho renders the mode for the config echo: the default
// independent mode echoes as "", so checkpoints written before the field
// existed (which decode it as "") compare equal to a default-mode run.
func samplingModeEcho(m uncertain.SamplingMode) string {
	if m == uncertain.SampleIndependent {
		return ""
	}
	return m.String()
}

func cellKey(dataset, method string, paperK int) string {
	return fmt.Sprintf("%s/%s/k%d", dataset, method, paperK)
}

// Get returns the stored run for a cell, if any. Nil-safe: a nil store
// never has cells, so unconfigured sweeps take the compute path untouched.
func (s *CellStore) Get(dataset, method string, paperK int) (Run, bool) {
	if s == nil {
		return Run{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	run, ok := s.file.Cells[cellKey(dataset, method, paperK)]
	return run, ok
}

// Put stores a finished cell and flushes the file atomically. Callers must
// not Put a cell whose failure was caused by cancellation — that cell
// needs recomputation on resume, and storing it would freeze the failure.
func (s *CellStore) Put(run Run) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.file.Cells[cellKey(run.Dataset, run.Method, run.PaperK)] = run
	s.dirty = true
	return s.flushLocked()
}

// Len returns the number of stored cells.
func (s *CellStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.file.Cells)
}

// Flush rewrites the checkpoint file if there are unsaved cells. Put
// already flushes; Flush exists for interrupt paths that want certainty.
func (s *CellStore) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	return s.flushLocked()
}

func (s *CellStore) flushLocked() error {
	if err := atomicfile.WriteJSON(s.path, s.file); err != nil {
		return fmt.Errorf("exp: writing sweep checkpoint: %w", err)
	}
	s.dirty = false
	return nil
}

// Clear removes the checkpoint file; called when a sweep completes so a
// later run does not resume from finished state.
func (s *CellStore) Clear() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.file.Cells = make(map[string]Run)
	s.dirty = false
	if err := os.Remove(s.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("exp: removing sweep checkpoint: %w", err)
	}
	return nil
}
