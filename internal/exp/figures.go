package exp

import (
	"fmt"

	"chameleon/internal/gen"
	"chameleon/internal/uncertain"
)

// Fig3 computes the edge-probability and degree distributions of the
// configured datasets (Figure 3).
func (c Config) Fig3() (probHists, degHists []Histogram, err error) {
	c = c.withDefaults()
	for _, d := range c.Datasets() {
		g, err := c.BuildDataset(d)
		if err != nil {
			return nil, nil, err
		}
		probHists = append(probHists, probHistogram(d, g))
		degHists = append(degHists, degreeHistogram(d, g))
	}
	return probHists, degHists, nil
}

func probHistogram(d gen.Dataset, g *uncertain.Graph) Histogram {
	const bins = 10
	counts := g.ProbHistogram(bins)
	labels := make([]string, bins)
	for i := range labels {
		labels[i] = fmt.Sprintf("[%.1f,%.1f)", float64(i)/bins, float64(i+1)/bins)
	}
	return Histogram{Dataset: d.Name, Labels: labels, Counts: counts}
}

func degreeHistogram(d gen.Dataset, g *uncertain.Graph) Histogram {
	full := g.StructuralDegreeHistogram()
	// Log-spaced buckets keep the heavy tail visible.
	bounds := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 1 << 30}
	labels := make([]string, len(bounds))
	counts := make([]int, len(bounds))
	lo := 0
	for i, hi := range bounds {
		if hi == 1<<30 {
			labels[i] = fmt.Sprintf(">=%d", lo)
		} else {
			labels[i] = fmt.Sprintf("[%d,%d)", lo, hi)
		}
		for deg := lo; deg < hi && deg < len(full); deg++ {
			counts[i] += full[deg]
		}
		lo = hi
	}
	return Histogram{Dataset: d.Name, Labels: labels, Counts: counts}
}

// Fig4 runs the Figure 4 study: for each dataset and k, the Rep-An
// distortion, the Chameleon (RSME) lower bound, and the distortion of the
// representative-extraction step alone.
func (c Config) Fig4() ([]Fig4Row, error) {
	c = c.withDefaults()
	var rows []Fig4Row
	for _, d := range c.Datasets() {
		g, err := c.BuildDataset(d)
		if err != nil {
			return nil, err
		}
		base := c.MeasureBaseline(d, g)
		extraction, err := c.ExtractionOnlyDiscrepancy(g)
		if err != nil {
			return nil, err
		}
		for _, paperK := range c.PaperKs {
			repRun := c.RunCell(d, g, base, "Rep-An", paperK)
			if err := c.ctx().Err(); err != nil {
				return rows, err
			}
			chamRun := c.RunCell(d, g, base, "RSME", paperK)
			if err := c.ctx().Err(); err != nil {
				return rows, err
			}
			rows = append(rows, Fig4Row{
				Dataset:        d.Name,
				PaperK:         paperK,
				K:              d.KScale(paperK),
				RepAn:          repRun.RelDiscrepancy,
				RepAnFailed:    repRun.Failed,
				Chameleon:      chamRun.RelDiscrepancy,
				ChamFailed:     chamRun.Failed,
				ExtractionOnly: extraction,
			})
		}
	}
	return rows, nil
}
