package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestAttackExperiment(t *testing.T) {
	c := quickCfg()
	c.PaperKs = []int{100} // mid element of a single-element sweep
	rows, err := c.AttackExperiment()
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets x (original + 4 methods).
	if len(rows) != 15 {
		t.Fatalf("got %d rows, want 15", len(rows))
	}
	byKey := map[string]AttackRow{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Method] = r
	}
	for _, ds := range []string{"dblp-q", "brightkite-q", "ppi-q"} {
		orig := byKey[ds+"/original"]
		rsme := byKey[ds+"/RSME"]
		if rsme.Failed {
			t.Fatalf("%s: RSME should succeed at the smallest k", ds)
		}
		if rsme.MeanPosterior >= orig.MeanPosterior {
			t.Fatalf("%s: anonymization should reduce the adversary's posterior (%v -> %v)",
				ds, orig.MeanPosterior, rsme.MeanPosterior)
		}
	}
	var buf bytes.Buffer
	WriteAttack(&buf, rows)
	if !strings.Contains(buf.String(), "original") || !strings.Contains(buf.String(), "mean posterior") {
		t.Fatalf("attack table:\n%s", buf.String())
	}
}

func TestKNNExperiment(t *testing.T) {
	c := quickCfg()
	c.PaperKs = []int{100}
	rows, err := c.KNNExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	byKey := map[string]KNNRow{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Method] = r
	}
	for _, ds := range []string{"dblp-q", "brightkite-q", "ppi-q"} {
		rsme := byKey[ds+"/RSME"]
		repan := byKey[ds+"/Rep-An"]
		if rsme.Failed || repan.Failed {
			t.Fatalf("%s: methods should succeed at the smallest k", ds)
		}
		// RSME must preserve at least as much k-NN structure as Rep-An
		// (on dense quick datasets both can saturate near 1).
		if rsme.Score < repan.Score-1e-6 {
			t.Fatalf("%s: RSME should preserve k-NN at least as well as Rep-An (%v vs %v)",
				ds, rsme.Score, repan.Score)
		}
		if rsme.Score <= 0 || rsme.Score > 1 {
			t.Fatalf("%s: score %v out of (0,1]", ds, rsme.Score)
		}
	}
	var buf bytes.Buffer
	WriteKNN(&buf, rows)
	if !strings.Contains(buf.String(), "preservation") {
		t.Fatalf("knn table:\n%s", buf.String())
	}
}

func TestCSweepAblation(t *testing.T) {
	c := quickCfg()
	c.PaperKs = []int{100, 150} // top = 150 -> a moderate k
	rows, err := c.CSweepAblation([]float64{1.5, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	var buf bytes.Buffer
	WriteCSweep(&buf, rows)
	if !strings.Contains(buf.String(), "candidate-set multiplier") {
		t.Fatalf("c-sweep table:\n%s", buf.String())
	}
}

func TestCSweepDefaults(t *testing.T) {
	c := quickCfg()
	c.PaperKs = []int{100}
	rows, err := c.CSweepAblation(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("default multipliers should give 4 rows, got %d", len(rows))
	}
}

func TestConvergenceStudy(t *testing.T) {
	c := quickCfg()
	g, err := c.BuildDataset(c.Datasets()[0])
	if err != nil {
		t.Fatal(err)
	}
	rows := ConvergenceStudy(g, []int{20, 200, 2000}, 8, 3, 2)
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	// The estimator spread must shrink monotonically with the budget —
	// this is the paper's "1000 samples suffice" heuristic.
	if !(rows[0].CV > rows[1].CV && rows[1].CV > rows[2].CV) {
		t.Fatalf("CV should shrink with samples: %v %v %v", rows[0].CV, rows[1].CV, rows[2].CV)
	}
	// 1/sqrt(N) scaling: a 10x budget should cut the CV by roughly
	// sqrt(10); allow a generous band.
	ratio := rows[0].CV / rows[2].CV
	if ratio < 3 {
		t.Fatalf("100x budget should cut CV by ~10x, got %vx", ratio)
	}
	var buf bytes.Buffer
	WriteConvergence(&buf, rows)
	if !strings.Contains(buf.String(), "1000-sample") {
		t.Fatalf("convergence table:\n%s", buf.String())
	}
}

func TestConvergenceStudyDefaults(t *testing.T) {
	c := quickCfg()
	g, err := c.BuildDataset(c.Datasets()[2])
	if err != nil {
		t.Fatal(err)
	}
	rows := ConvergenceStudy(g, nil, 0, 1, 1)
	if len(rows) != 3 || rows[0].Samples != 10 || rows[2].Samples != 1000 {
		t.Fatalf("default budgets wrong: %+v", rows)
	}
}

func TestDPComparison(t *testing.T) {
	c := quickCfg()
	c.PaperKs = []int{100}
	rows, err := c.DPComparison()
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets x (RSME + LT + 2 DP budgets).
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	byKey := map[string]DPRow{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Method] = r
	}
	for _, ds := range []string{"dblp-q", "brightkite-q", "ppi-q"} {
		rsme := byKey[ds+"/RSME"]
		dp := byKey[ds+"/DP-1K(2.0)"]
		if rsme.Failed {
			t.Fatalf("%s: RSME should succeed", ds)
		}
		// The related-work claim: DP regeneration destroys reliability
		// relative to the uncertainty-aware release.
		if rsme.RelDiscrepancy >= dp.RelDiscrepancy {
			t.Fatalf("%s: RSME reliability loss %v should be below DP's %v",
				ds, rsme.RelDiscrepancy, dp.RelDiscrepancy)
		}
		// And the deterministic k-degree pipeline pays the Rep-An-style
		// extraction cost too.
		lt := byKey[ds+"/LT-kdeg"]
		if !lt.Failed && rsme.RelDiscrepancy >= lt.RelDiscrepancy {
			t.Fatalf("%s: RSME reliability loss %v should be below LT's %v",
				ds, rsme.RelDiscrepancy, lt.RelDiscrepancy)
		}
	}
	var buf bytes.Buffer
	WriteDP(&buf, rows)
	if !strings.Contains(buf.String(), "DP-1K") {
		t.Fatalf("dp table:\n%s", buf.String())
	}
}

func TestCentralityExperiment(t *testing.T) {
	c := quickCfg()
	c.PaperKs = []int{100}
	rows, err := c.CentralityExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Method == "RSME" && r.Failed {
			t.Fatalf("%s: RSME should succeed", r.Dataset)
		}
		if !r.Failed && (r.Overlap < 0 || r.Overlap > 1) {
			t.Fatalf("overlap %v out of [0,1]", r.Overlap)
		}
	}
	var buf bytes.Buffer
	WriteCentrality(&buf, rows)
	if !strings.Contains(buf.String(), "betweenness preservation") {
		t.Fatalf("centrality table:\n%s", buf.String())
	}
}

func TestExtractionAblation(t *testing.T) {
	c := quickCfg()
	rows, err := c.ExtractionAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byName := map[string]ExtractionRow{}
	for _, r := range rows {
		byName[r.Extractor] = r
	}
	// Each refinement must beat (or tie) the raw most-probable world on
	// its own objective.
	if byName["ADR"].DegreeFit > byName["most-probable"].DegreeFit {
		t.Fatalf("ADR degree fit %v worse than MP %v",
			byName["ADR"].DegreeFit, byName["most-probable"].DegreeFit)
	}
	if byName["ABM"].BetwFit > byName["most-probable"].BetwFit {
		t.Fatalf("ABM betweenness fit %v worse than MP %v",
			byName["ABM"].BetwFit, byName["most-probable"].BetwFit)
	}
	var buf bytes.Buffer
	WriteExtraction(&buf, rows)
	if !strings.Contains(buf.String(), "ABM") {
		t.Fatalf("extraction table:\n%s", buf.String())
	}
}

func TestEpsilonSweep(t *testing.T) {
	c := quickCfg()
	c.PaperKs = []int{100}
	rows, err := c.EpsilonSweep([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// The loose tolerance must be feasible and never need more noise than
	// the strict one.
	if rows[1].Failed {
		t.Fatal("loose tolerance should be feasible")
	}
	if !rows[0].Failed && rows[1].Sigma > rows[0].Sigma+1e-9 {
		t.Fatalf("looser eps should not need more noise: %v vs %v", rows[1].Sigma, rows[0].Sigma)
	}
	var buf bytes.Buffer
	WriteEpsilonSweep(&buf, rows)
	if !strings.Contains(buf.String(), "tolerance sweep") {
		t.Fatalf("epsilon table:\n%s", buf.String())
	}
}

func TestEpsilonSweepDefaults(t *testing.T) {
	c := quickCfg()
	c.PaperKs = []int{100}
	rows, err := c.EpsilonSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("default multipliers should give 4 rows, got %d", len(rows))
	}
}
