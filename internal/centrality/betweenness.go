// Package centrality computes betweenness centrality for possible worlds
// and its expectation over an uncertain graph. Betweenness is the second
// statistic the representative-extraction literature [29] targets (the
// ABM variant) and an informative utility probe: anonymization that
// preserves degrees can still scramble which vertices broker shortest
// paths.
package centrality

import (
	"math/rand/v2"
	"runtime"
	"sync"

	"chameleon/internal/uncertain"
)

// Betweenness computes exact unweighted betweenness centrality of one
// world with Brandes' algorithm: O(|V|·|E|) over BFS DAGs. Scores use the
// undirected convention (each pair contributes once).
func Betweenness(w *uncertain.World) []float64 {
	n := w.NumNodes()
	adj := w.AdjacencyLists()
	bc := make([]float64, n)

	sigma := make([]float64, n) // shortest-path counts
	dist := make([]int32, n)
	delta := make([]float64, n)
	stack := make([]uncertain.NodeID, 0, n)
	queue := make([]uncertain.NodeID, 0, n)
	preds := make([][]uncertain.NodeID, n)

	for s := 0; s < n; s++ {
		// Reset per-source state.
		stack = stack[:0]
		queue = queue[:0]
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		src := uncertain.NodeID(s)
		sigma[src] = 1
		dist[src] = 0
		queue = append(queue, src)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, u := range adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
					preds[u] = append(preds[u], v)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(stack) - 1; i >= 0; i-- {
			v := stack[i]
			for _, p := range preds[v] {
				delta[p] += sigma[p] / sigma[v] * (1 + delta[v])
			}
			if v != src {
				bc[v] += delta[v]
			}
		}
	}
	// Undirected: every pair was counted from both endpoints.
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}

// Options configures the expectation estimator.
type Options struct {
	// Samples is the number of sampled worlds (default 50 — Brandes is
	// the expensive part, not the sampling).
	Samples int
	// Seed drives world sampling.
	Seed uint64
	// Workers caps parallelism; 0 = GOMAXPROCS.
	Workers int
}

// Expected estimates E[betweenness(v)] for every vertex over the possible
// worlds of g.
func Expected(g *uncertain.Graph, o Options) []float64 {
	if o.Samples <= 0 {
		o.Samples = 50
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.Samples {
		workers = o.Samples
	}
	perSample := make([][]float64, o.Samples)
	var wg sync.WaitGroup
	jobs := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rng := rand.New(rand.NewPCG(o.Seed, uint64(i)+1))
				perSample[i] = Betweenness(g.SampleWorld(rng))
			}
		}()
	}
	for i := 0; i < o.Samples; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	out := make([]float64, g.NumNodes())
	for _, bc := range perSample {
		for v, x := range bc {
			out[v] += x
		}
	}
	inv := 1 / float64(o.Samples)
	for v := range out {
		out[v] *= inv
	}
	return out
}

// TopKOverlap returns |topK(a) ∩ topK(b)| / k: how much of the k most
// central vertices one scoring preserves of another. Ties break by
// vertex id.
func TopKOverlap(a, b []float64, k int) float64 {
	if k <= 0 || len(a) == 0 || len(a) != len(b) {
		return 0
	}
	top := func(scores []float64) map[int]bool {
		idx := make([]int, len(scores))
		for i := range idx {
			idx[i] = i
		}
		// Partial selection of the top k.
		for i := 0; i < k && i < len(idx); i++ {
			best := i
			for j := i + 1; j < len(idx); j++ {
				si, sb := scores[idx[j]], scores[idx[best]]
				if si > sb || (si == sb && idx[j] < idx[best]) {
					best = j
				}
			}
			idx[i], idx[best] = idx[best], idx[i]
		}
		set := make(map[int]bool, k)
		for i := 0; i < k && i < len(idx); i++ {
			set[idx[i]] = true
		}
		return set
	}
	ta, tb := top(a), top(b)
	inter := 0
	for v := range ta {
		if tb[v] {
			inter++
		}
	}
	kk := k
	if kk > len(a) {
		kk = len(a)
	}
	return float64(inter) / float64(kk)
}
