package centrality

import (
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/gen"
	"chameleon/internal/uncertain"
)

func certainWorld(t *testing.T, n int, edges [][2]uncertain.NodeID) *uncertain.World {
	t.Helper()
	g := uncertain.New(n)
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], 1)
	}
	return g.MostProbableWorld()
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: classic values 0, 3, 4, 3, 0.
	w := certainWorld(t, 5, [][2]uncertain.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	bc := Betweenness(w)
	want := []float64{0, 3, 4, 3, 0}
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-12 {
			t.Fatalf("bc[%d] = %v, want %v (all: %v)", v, bc[v], want[v], bc)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with center 0 and 4 leaves: center brokers C(4,2)=6 pairs.
	w := certainWorld(t, 5, [][2]uncertain.NodeID{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	bc := Betweenness(w)
	if math.Abs(bc[0]-6) > 1e-12 {
		t.Fatalf("center betweenness = %v, want 6", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf %d betweenness = %v, want 0", v, bc[v])
		}
	}
}

func TestBetweennessCycle(t *testing.T) {
	// Even cycle: symmetric, all equal.
	const n = 6
	edges := make([][2]uncertain.NodeID, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]uncertain.NodeID{uncertain.NodeID(i), uncertain.NodeID((i + 1) % n)}
	}
	bc := Betweenness(certainWorld(t, n, edges))
	for v := 1; v < n; v++ {
		if math.Abs(bc[v]-bc[0]) > 1e-12 {
			t.Fatalf("cycle betweenness not uniform: %v", bc)
		}
	}
	// C6: each vertex lies on the shortest paths of ... verify against
	// brute force below rather than a closed form.
	brute := bruteBetweenness(certainWorld(t, n, edges))
	for v := range bc {
		if math.Abs(bc[v]-brute[v]) > 1e-9 {
			t.Fatalf("Brandes %v vs brute %v", bc, brute)
		}
	}
}

func TestBetweennessSplitPaths(t *testing.T) {
	// Diamond 0-1-3, 0-2-3: vertices 1 and 2 each carry half of the
	// (0,3) pair.
	w := certainWorld(t, 4, [][2]uncertain.NodeID{{0, 1}, {1, 3}, {0, 2}, {2, 3}})
	bc := Betweenness(w)
	if math.Abs(bc[1]-0.5) > 1e-12 || math.Abs(bc[2]-0.5) > 1e-12 {
		t.Fatalf("diamond betweenness = %v, want 0.5 for middles", bc)
	}
}

// bruteBetweenness recomputes betweenness by explicit shortest-path
// enumeration (BFS counting), the reference for the property test.
func bruteBetweenness(w *uncertain.World) []float64 {
	n := w.NumNodes()
	adj := w.AdjacencyLists()
	bc := make([]float64, n)
	// For every ordered pair (s,t), find sigma_st and sigma_st(v) by BFS
	// layered counting.
	for s := 0; s < n; s++ {
		dist := make([]int32, n)
		sigma := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		sigma[s] = 1
		queue := []int{s}
		order := []int{}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, int(u))
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
				}
			}
		}
		// sigma_st(v): paths through v = sigma_sv * sigma_vt when
		// dist(s,v)+dist(v,t) == dist(s,t); recompute by a second BFS per t
		// is heavy, so use the pair-summed dependency directly.
		for _, tt := range order {
			if tt == s {
				continue
			}
			// BFS from t to get sigma_t* and dist_t*.
			distT := make([]int32, n)
			sigmaT := make([]float64, n)
			for i := range distT {
				distT[i] = -1
			}
			distT[tt] = 0
			sigmaT[tt] = 1
			q2 := []int{tt}
			for len(q2) > 0 {
				v := q2[0]
				q2 = q2[1:]
				for _, u := range adj[v] {
					if distT[u] < 0 {
						distT[u] = distT[v] + 1
						q2 = append(q2, int(u))
					}
					if distT[u] == distT[v]+1 {
						sigmaT[u] += sigmaT[v]
					}
				}
			}
			for v := 0; v < n; v++ {
				if v == s || v == tt || dist[v] < 0 || distT[v] < 0 {
					continue
				}
				if dist[v]+distT[v] == dist[tt] {
					bc[v] += sigma[v] * sigmaT[v] / sigma[tt]
				}
			}
		}
	}
	for i := range bc {
		bc[i] /= 2 // ordered pairs counted twice
	}
	return bc
}

func TestBrandesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.IntN(10)
		g := uncertain.New(n)
		for i := 0; i < 3*n; i++ {
			u := uncertain.NodeID(rng.IntN(n))
			v := uncertain.NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, 1)
		}
		w := g.MostProbableWorld()
		fast := Betweenness(w)
		slow := bruteBetweenness(w)
		for v := range fast {
			if math.Abs(fast[v]-slow[v]) > 1e-9 {
				t.Fatalf("trial %d vertex %d: Brandes %v vs brute %v", trial, v, fast[v], slow[v])
			}
		}
	}
}

func TestExpectedBetweenness(t *testing.T) {
	// Certain graph: expectation equals the deterministic value.
	g := uncertain.New(5)
	for _, e := range [][2]uncertain.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		g.MustAddEdge(e[0], e[1], 1)
	}
	exp := Expected(g, Options{Samples: 5, Seed: 1})
	want := Betweenness(g.MostProbableWorld())
	for v := range want {
		if math.Abs(exp[v]-want[v]) > 1e-12 {
			t.Fatalf("expected betweenness %v, want %v", exp, want)
		}
	}
}

func TestExpectedBetweennessParallelDeterministic(t *testing.T) {
	g, err := gen.BarabasiAlbert(60, 2, gen.UniformProbs(0.3, 0.9), rand.New(rand.NewPCG(4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	a := Expected(g, Options{Samples: 20, Seed: 9, Workers: 1})
	b := Expected(g, Options{Samples: 20, Seed: 9, Workers: 8})
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("expected betweenness must not depend on worker count")
		}
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{10, 9, 8, 0, 0}
	b := []float64{10, 0, 8, 9, 0}
	if got := TopKOverlap(a, b, 3); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("overlap = %v, want 2/3", got)
	}
	if got := TopKOverlap(a, a, 3); got != 1 {
		t.Fatalf("self overlap = %v", got)
	}
	if got := TopKOverlap(a, b, 0); got != 0 {
		t.Fatalf("k=0 overlap = %v", got)
	}
	if got := TopKOverlap(a, []float64{1}, 2); got != 0 {
		t.Fatalf("length mismatch overlap = %v", got)
	}
}
