package dpbaseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/gen"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

func testGraph(t testing.TB, seed uint64) *uncertain.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(300, 3, gen.UniformProbs(0.2, 0.8), rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLaplaceDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	const b = 2.0
	const n = 200000
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, b)
		sum += x
		sumAbs += math.Abs(x)
	}
	if mean := sum / n; math.Abs(mean) > 0.05 {
		t.Fatalf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = b for Laplace(0, b).
	if meanAbs := sumAbs / n; math.Abs(meanAbs-b) > 0.05 {
		t.Fatalf("Laplace E|X| = %v, want %v", meanAbs, b)
	}
}

func TestNoisyDegreeSequence(t *testing.T) {
	g := testGraph(t, 2)
	degrees, err := NoisyDegreeSequence(g, Params{Epsilon: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(degrees) != g.NumNodes() {
		t.Fatalf("got %d degrees", len(degrees))
	}
	for v, d := range degrees {
		if d < 0 || d > g.NumNodes()-1 {
			t.Fatalf("degree[%d] = %d out of range", v, d)
		}
	}
	// With a generous budget the noisy sequence tracks the expected one.
	exp := g.ExpectedDegrees()
	var mae float64
	for v := range degrees {
		mae += math.Abs(float64(degrees[v]) - exp[v])
	}
	mae /= float64(len(degrees))
	if mae > 4 {
		t.Fatalf("eps=1 noisy sequence MAE = %v, too large", mae)
	}
}

func TestNoisyDegreeSequenceBudgetMatters(t *testing.T) {
	g := testGraph(t, 4)
	exp := g.ExpectedDegrees()
	mae := func(eps float64) float64 {
		var total float64
		const reps = 5
		for r := uint64(0); r < reps; r++ {
			degrees, err := NoisyDegreeSequence(g, Params{Epsilon: eps, Seed: r})
			if err != nil {
				t.Fatal(err)
			}
			for v := range degrees {
				total += math.Abs(float64(degrees[v]) - exp[v])
			}
		}
		return total / float64(reps*len(exp))
	}
	if loose, tight := mae(0.1), mae(10); loose <= tight {
		t.Fatalf("smaller epsilon must add more noise: eps=0.1 MAE %v vs eps=10 MAE %v", loose, tight)
	}
}

func TestNoisyDegreeSequenceErrors(t *testing.T) {
	g := testGraph(t, 5)
	if _, err := NoisyDegreeSequence(g, Params{Epsilon: 0}); err == nil {
		t.Fatal("epsilon=0 should error")
	}
	if _, err := NoisyDegreeSequence(g, Params{Epsilon: -1}); err == nil {
		t.Fatal("negative epsilon should error")
	}
}

func TestConfigurationModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	degrees := []int{3, 2, 2, 2, 1}
	g, err := ConfigurationModel(5, degrees, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Erased model: at most sum(d)/2 edges, all with the given probability.
	if g.NumEdges() > 5 {
		t.Fatalf("edges = %d, want <= 5", g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i).P != 0.5 {
			t.Fatalf("edge prob = %v", g.Edge(i).P)
		}
	}
}

func TestConfigurationModelErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	if _, err := ConfigurationModel(3, []int{1, 1}, 0.5, rng); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := ConfigurationModel(2, []int{-1, 1}, 0.5, rng); err == nil {
		t.Fatal("negative degree should error")
	}
	if _, err := ConfigurationModel(2, []int{1, 1}, 0, rng); err == nil {
		t.Fatal("zero edge probability should error")
	}
	if _, err := ConfigurationModel(2, []int{1, 1}, 1.5, rng); err == nil {
		t.Fatal("edge probability > 1 should error")
	}
}

func TestReleasePreservesDegreeProfile(t *testing.T) {
	g := testGraph(t, 8)
	rel, err := Release(g, Params{Epsilon: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumNodes() != g.NumNodes() {
		t.Fatal("vertex count changed")
	}
	// The dK-1 release approximately preserves the degree profile...
	if e := DegreeSequenceError(g, rel); e > 3 {
		t.Fatalf("degree sequence error = %v, too large for eps=2", e)
	}
}

// TestReleaseDestroysReliability confirms the related-work claim the
// baseline exists for: a dK-1 DP release preserves degrees but loses the
// reliability structure almost entirely, far worse than Chameleon.
func TestReleaseDestroysReliability(t *testing.T) {
	g := testGraph(t, 10)
	rel, err := Release(g, Params{Epsilon: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	est := reliability.Estimator{Samples: 300, Seed: 12}
	disc, err := est.RelativeDiscrepancy(g, rel, reliability.PairSample{Pairs: 2000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if disc < 0.2 {
		t.Fatalf("a synthetic regeneration should lose substantial reliability, got %v", disc)
	}
}

func TestReleaseDefaultEdgeProb(t *testing.T) {
	g := testGraph(t, 14)
	rel, err := Release(g, Params{Epsilon: 1, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumEdges() == 0 {
		t.Fatal("release should have edges")
	}
	if p := rel.Edge(0).P; math.Abs(p-g.MeanProb()) > 1e-12 {
		t.Fatalf("default edge probability %v, want mean %v", p, g.MeanProb())
	}
}

func TestDegreeSequenceErrorIdentical(t *testing.T) {
	g := testGraph(t, 16)
	if e := DegreeSequenceError(g, g.Clone()); e != 0 {
		t.Fatalf("identical graphs should have zero error, got %v", e)
	}
	if e := DegreeSequenceError(uncertain.New(0), uncertain.New(0)); e != 0 {
		t.Fatalf("empty graphs: %v", e)
	}
}
