// Package dpbaseline implements the differential-privacy release path the
// paper's related work describes (Section II): project the graph onto
// dK-series statistics — here the dK-1 series, i.e. the degree sequence —
// release them under edge ε-differential privacy with Laplace noise, and
// regenerate a synthetic graph from the noisy statistics with a
// configuration model.
//
// The paper argues that "current techniques are still inadequate to
// provide desirable data utility for many graph mining tasks"; this
// baseline lets the experiment harness confirm that claim against
// Chameleon on the reliability metrics. Since DP mechanisms are defined
// for deterministic graphs, the uncertain input is first reduced to its
// expected degree sequence — exactly the kind of uncertainty-oblivious
// step the paper warns about.
package dpbaseline

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"chameleon/internal/uncertain"
)

// Params configures the DP release.
type Params struct {
	// Epsilon is the differential-privacy budget for the degree-sequence
	// release. Adding or removing one edge changes two degrees by one, so
	// the L1 sensitivity of the sequence is 2 and each degree receives
	// Laplace(2/eps) noise.
	Epsilon float64
	// Seed drives noise and regeneration.
	Seed uint64
	// EdgeProb is the probability assigned to every synthetic edge; the
	// dK-series carries no probability information, so the release has to
	// invent one. Default: the original graph's mean probability.
	EdgeProb float64
}

// Laplace draws one Laplace(0, b) variate via inverse CDF.
func Laplace(rng *rand.Rand, b float64) float64 {
	u := rng.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// NoisyDegreeSequence releases the expected degree sequence of g under
// eps-DP: round(E[deg(v)]) + Laplace(2/eps) per vertex, clamped to
// [0, n-1].
func NoisyDegreeSequence(g *uncertain.Graph, p Params) ([]int, error) {
	if p.Epsilon <= 0 {
		return nil, fmt.Errorf("dpbaseline: epsilon must be positive, got %v", p.Epsilon)
	}
	n := g.NumNodes()
	rng := rand.New(rand.NewPCG(p.Seed, 0xd9))
	b := 2 / p.Epsilon
	out := make([]int, n)
	for v, d := range g.ExpectedDegrees() {
		noisy := int(math.Round(d + Laplace(rng, b)))
		if noisy < 0 {
			noisy = 0
		}
		if noisy > n-1 {
			noisy = n - 1
		}
		out[v] = noisy
	}
	return out, nil
}

// ConfigurationModel generates a simple graph approximating the given
// degree sequence: vertices enter a stub pool once per requested degree,
// stubs are paired randomly, and self-loops/multi-edges are discarded
// (the standard erased configuration model).
func ConfigurationModel(n int, degrees []int, edgeProb float64, rng *rand.Rand) (*uncertain.Graph, error) {
	if len(degrees) != n {
		return nil, fmt.Errorf("dpbaseline: %d degrees for %d vertices", len(degrees), n)
	}
	if edgeProb <= 0 || edgeProb > 1 {
		return nil, fmt.Errorf("dpbaseline: bad edge probability %v", edgeProb)
	}
	var stubs []uncertain.NodeID
	for v, d := range degrees {
		if d < 0 {
			return nil, fmt.Errorf("dpbaseline: negative degree %d for vertex %d", d, v)
		}
		for i := 0; i < d; i++ {
			stubs = append(stubs, uncertain.NodeID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := uncertain.New(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			continue // erased configuration model
		}
		if err := g.AddEdge(u, v, edgeProb); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Release runs the full DP baseline: noisy expected-degree sequence, then
// configuration-model regeneration. The output is a synthetic uncertain
// graph sharing only the (noisy) degree profile with the original — no
// edge of the input is consulted beyond its contribution to the degrees,
// which is what gives the mechanism its DP guarantee and what destroys
// the reliability structure.
func Release(g *uncertain.Graph, p Params) (*uncertain.Graph, error) {
	if p.EdgeProb == 0 {
		p.EdgeProb = g.MeanProb()
		if p.EdgeProb <= 0 {
			p.EdgeProb = 0.5
		}
	}
	degrees, err := NoisyDegreeSequence(g, p)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0xc0f))
	return ConfigurationModel(g.NumNodes(), degrees, p.EdgeProb, rng)
}

// DegreeSequenceError measures how far a released graph's expected degree
// sequence is from the original's: mean absolute difference of the sorted
// sequences (invariant to the relabeling a synthetic release implies).
func DegreeSequenceError(orig, released *uncertain.Graph) float64 {
	a := append([]float64(nil), orig.ExpectedDegrees()...)
	b := append([]float64(nil), released.ExpectedDegrees()...)
	sort.Float64s(a)
	sort.Float64s(b)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		total += math.Abs(a[i] - b[i])
	}
	return total / float64(n)
}
