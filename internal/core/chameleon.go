package core

import (
	"math"

	"chameleon/internal/obs"
	"chameleon/internal/privacy"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// Anonymize runs the Chameleon iterative skeleton (Algorithm 1): an
// exponential search for a noise level sigma at which GenObf succeeds,
// followed by a binary search for the smallest such sigma. Uniqueness and
// reliability-relevance scores depend only on the input graph, so they are
// computed once and shared across all GenObf calls.
func Anonymize(g *uncertain.Graph, p Params) (*Result, error) {
	p = p.withDefaults()
	if err := p.validate(g); err != nil {
		return nil, err
	}
	root := obs.NewSpan("anonymize")
	root.SetAttr("variant", p.Variant.String())
	defer root.End()

	pre := root.StartChild("precompute")
	st, err := newSearchState(g, p)
	pre.End()
	if err != nil {
		return nil, err
	}
	p.Obs.Debug("core: precompute done",
		"variant", p.Variant.String(), "dur", pre.Duration())

	res := &Result{Variant: p.Variant, Trace: root}

	// Phase 1: exponential search for a feasible sigma. The search starts
	// from a near-zero noise level rather than the paper's sigma_u = 1: an
	// uncertain original often already carries enough degree entropy that
	// tiny noise suffices, and GenObf success is not monotone in sigma, so
	// starting high can lock the bisection into a needlessly large noise
	// bracket.
	phase := root.StartChild("exponential-search")
	st.phase = phase
	sigmaLo, sigmaHi := 0.0, 4*p.SigmaTolerance
	var best *genObfOutcome
	for d := 0; ; d++ {
		out := st.genObf(sigmaHi, res)
		if out.ok() {
			best = &out
			break
		}
		if d >= p.MaxDoublings {
			phase.SetAttr("found", false)
			phase.End()
			return nil, ErrNoObfuscation
		}
		sigmaLo, sigmaHi = sigmaHi, sigmaHi*4
	}
	phase.SetAttr("found", true)
	phase.SetAttr("sigma_hi", sigmaHi)
	phase.End()
	p.Obs.Debug("core: exponential search bracketed sigma",
		"sigma_lo", sigmaLo, "sigma_hi", sigmaHi, "dur", phase.Duration())

	// Phase 2: bisection for the smallest feasible sigma, keeping the best
	// obfuscation found.
	phase = root.StartChild("bisection")
	st.phase = phase
	for sigmaHi-sigmaLo > p.SigmaTolerance {
		mid := (sigmaLo + sigmaHi) / 2
		out := st.genObf(mid, res)
		if out.ok() {
			sigmaHi = mid
			best = &out
		} else {
			sigmaLo = mid
		}
	}
	phase.SetAttr("sigma", sigmaHi)
	phase.End()

	res.Graph = best.graph
	res.EpsilonTilde = best.epsilon
	res.Sigma = sigmaHi
	root.SetAttr("sigma", res.Sigma)
	root.SetAttr("epsilon_tilde", res.EpsilonTilde)
	p.Obs.Log("core: anonymization done",
		"variant", p.Variant.String(), "sigma", res.Sigma,
		"epsilon_tilde", res.EpsilonTilde, "genobf_calls", res.GenObfCalls,
		"attempts", res.Attempts, "dur", root.Duration())
	return res, nil
}

// searchState holds everything GenObf needs that is invariant across the
// sigma search: the input graph, the privacy/utility scores, the exclusion
// set and the vertex sampling distribution.
type searchState struct {
	g      *uncertain.Graph
	p      Params
	prop   []int // adversary property (default: rounded expected degree)
	excl   map[uncertain.NodeID]bool
	q      []float64 // per-vertex selection weight Q^v (0 for excluded)
	cumQ   []float64 // cumulative weights for sampling
	target int       // |E_C| target = c*|E|
	seq    uint64    // attempt counter for RNG derivation
	phase  *obs.Span // current search-phase span; genObf nests under it
}

func newSearchState(g *uncertain.Graph, p Params) (*searchState, error) {
	n := g.NumNodes()

	uniq := privacy.VertexUniqueness(g)

	var vrr []float64
	if p.Variant.reliabilitySensitive() {
		est := reliability.Estimator{Samples: p.Samples, Seed: p.Seed, Workers: p.Workers, Obs: p.Obs, Cache: p.Cache}
		edgeRel := est.EdgeRelevance(g)
		vrr = reliability.NormalizeToUnit(reliability.VertexRelevance(g, edgeRel))
	} else {
		vrr = make([]float64, n)
	}

	// Exclusion: the ceil(eps/2 * |V|) vertices with the largest combined
	// uniqueness-and-relevance score are exempted from obfuscation effort.
	hSize := int(math.Ceil(p.Epsilon / 2 * float64(n)))
	excl := make(map[uncertain.NodeID]bool, hSize)
	if hSize > 0 {
		combined := make([]float64, n)
		for v := 0; v < n; v++ {
			if p.Variant.reliabilitySensitive() {
				combined[v] = uniq[v] * vrr[v]
			} else {
				combined[v] = uniq[v]
			}
		}
		for _, v := range topK(combined, hSize) {
			excl[uncertain.NodeID(v)] = true
		}
	}

	// Selection weight: proportional to uniqueness, inversely proportional
	// to (normalized) reliability relevance. VRR is re-normalized over the
	// non-excluded vertices per Algorithm 3 line 5.
	maxVRR := 0.0
	for v := 0; v < n; v++ {
		if !excl[uncertain.NodeID(v)] && vrr[v] > maxVRR {
			maxVRR = vrr[v]
		}
	}
	q := make([]float64, n)
	for v := 0; v < n; v++ {
		if excl[uncertain.NodeID(v)] {
			continue
		}
		w := uniq[v]
		if p.Variant.reliabilitySensitive() && maxVRR > 0 {
			// Keep a small floor so zero-weight vertices stay reachable.
			w *= 1 - 0.95*(vrr[v]/maxVRR)
		}
		q[v] = w
	}
	cum := make([]float64, n)
	var total float64
	for v := 0; v < n; v++ {
		total += q[v]
		cum[v] = total
	}
	if total <= 0 {
		// Degenerate scores: fall back to uniform over non-excluded.
		total = 0
		for v := 0; v < n; v++ {
			if !excl[uncertain.NodeID(v)] {
				q[v] = 1
			}
			total += q[v]
			cum[v] = total
		}
	}

	target := int(math.Round(p.SizeMultiplier * float64(g.NumEdges())))
	if target < 1 {
		target = 1
	}
	maxPairs := n * (n - 1) / 2
	if target > maxPairs {
		target = maxPairs
	}

	prop := p.Property
	if prop == nil {
		prop = privacy.DegreeProperty(g)
	}
	return &searchState{g: g, p: p, prop: prop, excl: excl, q: q, cumQ: cum, target: target}, nil
}

// topK returns the indices of the k largest scores.
func topK(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine: k is eps/2*|V|, tiny in practice.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
