package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"chameleon/internal/obs"
	"chameleon/internal/privacy"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// Anonymize runs the Chameleon iterative skeleton (Algorithm 1) without
// cancellation; see AnonymizeContext.
func Anonymize(g *uncertain.Graph, p Params) (*Result, error) {
	return AnonymizeContext(context.Background(), g, p)
}

// AnonymizeContext runs the Chameleon iterative skeleton (Algorithm 1): an
// exponential search for a noise level sigma at which GenObf succeeds,
// followed by a binary search for the smallest such sigma. Uniqueness and
// reliability-relevance scores depend only on the input graph, so they are
// computed once and shared across all GenObf calls.
//
// Cancelling ctx stops the search cooperatively — at Monte Carlo chunk
// boundaries during the precompute, at GenObf attempt boundaries during
// the search. An interrupted search returns a NON-nil *Result carrying the
// best obfuscation found so far (Result.Graph is nil when none was found)
// together with an error wrapping ctx.Err(); callers distinguish the
// partial outcome with errors.Is(err, context.Canceled) or
// context.DeadlineExceeded.
//
// With Params.CheckpointPath set, the search state is snapshotted
// atomically on interrupt (and every Params.CheckpointEvery GenObf calls),
// and Params.Resume restores such a snapshot: a resumed run replays the
// remaining search deterministically and its result is bit-identical to an
// uninterrupted run with the same inputs. A checkpoint left behind by an
// earlier interrupt is removed once the search completes.
func AnonymizeContext(ctx context.Context, g *uncertain.Graph, p Params) (*Result, error) {
	p = p.withDefaults()
	if err := p.validate(g); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Resume != nil {
		if err := p.Resume.validateAgainst(g, p); err != nil {
			return nil, err
		}
	}
	root := obs.NewSpan("anonymize")
	root.SetAttr("variant", p.Variant.String())
	defer root.End()

	pre := root.StartChild("precompute")
	st, err := newSearchState(ctx, g, p)
	pre.End()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Cancelled during the precompute: the relevance scores are
		// truncated garbage and nothing search-shaped exists to checkpoint
		// (a resume redoes the deterministic precompute anyway).
		return nil, interruptErr(err, 0)
	}
	p.Obs.Debug("core: precompute done",
		"variant", p.Variant.String(), "dur", pre.Duration())

	res := &Result{Variant: p.Variant, Trace: root}
	cur := newSearchCursor(p)
	if p.Resume != nil {
		if cur, err = restoreCursor(p.Resume, st, res); err != nil {
			return nil, err
		}
		p.Obs.Log("core: resuming σ-search from checkpoint",
			"phase", cur.phase, "sigma_lo", cur.sigmaLo, "sigma_hi", cur.sigmaHi,
			"genobf_calls", res.GenObfCalls, "best_epsilon", cur.best.epsilon)
	}

	// Phase 1: exponential search for a feasible sigma. The search starts
	// from a near-zero noise level rather than the paper's sigma_u = 1: an
	// uncertain original often already carries enough degree entropy that
	// tiny noise suffices, and GenObf success is not monotone in sigma, so
	// starting high can lock the bisection into a needlessly large noise
	// bracket.
	if cur.phase == phaseExponential {
		phase := root.StartChild("exponential-search")
		st.phase = phase
		for {
			out, err := st.genObfCtx(ctx, cur.sigmaHi, res)
			if err != nil {
				phase.End()
				return st.interrupted(cur, res, err)
			}
			cur.steps = append(cur.steps, CheckpointStep{Phase: cur.phase, Sigma: cur.sigmaHi, Epsilon: out.epsilon, OK: out.ok()})
			if out.ok() {
				cur.best = out
				cur.bestSigma = cur.sigmaHi
				break
			}
			if cur.doublings >= p.MaxDoublings {
				phase.SetAttr("found", false)
				phase.SetAttr("doublings", cur.doublings)
				phase.End()
				return nil, ErrNoObfuscation
			}
			cur.doublings++
			cur.sigmaLo, cur.sigmaHi = cur.sigmaHi, cur.sigmaHi*4
			st.publishProgress(cur, res)
			st.maybeCheckpoint(cur, res)
		}
		phase.SetAttr("found", true)
		phase.SetAttr("sigma_hi", cur.sigmaHi)
		phase.SetAttr("sigma_lo", cur.sigmaLo)
		phase.SetAttr("doublings", cur.doublings)
		phase.End()
		p.Obs.Debug("core: exponential search bracketed sigma",
			"sigma_lo", cur.sigmaLo, "sigma_hi", cur.sigmaHi, "dur", phase.Duration())
		cur.phase = phaseBisection
		st.publishProgress(cur, res)
		st.maybeCheckpoint(cur, res)
	}

	// Phase 2: bisection for the smallest feasible sigma, keeping the best
	// obfuscation found.
	phase := root.StartChild("bisection")
	st.phase = phase
	bisections := 0
	for cur.sigmaHi-cur.sigmaLo > p.SigmaTolerance {
		mid := (cur.sigmaLo + cur.sigmaHi) / 2
		out, err := st.genObfCtx(ctx, mid, res)
		if err != nil {
			phase.End()
			return st.interrupted(cur, res, err)
		}
		cur.steps = append(cur.steps, CheckpointStep{Phase: cur.phase, Sigma: mid, Epsilon: out.epsilon, OK: out.ok()})
		if out.ok() {
			cur.sigmaHi = mid
			cur.best = out
			cur.bestSigma = mid
		} else {
			cur.sigmaLo = mid
		}
		bisections++
		st.publishProgress(cur, res)
		st.maybeCheckpoint(cur, res)
	}
	phase.SetAttr("sigma", cur.sigmaHi)
	phase.SetAttr("steps", bisections)
	phase.SetAttr("bracket_width", cur.sigmaHi-cur.sigmaLo)
	phase.End()
	st.publishDone()

	res.Graph = cur.best.graph
	res.EpsilonTilde = cur.best.epsilon
	res.Sigma = cur.sigmaHi
	root.SetAttr("sigma", res.Sigma)
	root.SetAttr("epsilon_tilde", res.EpsilonTilde)
	st.clearCheckpoint()
	p.Obs.Log("core: anonymization done",
		"variant", p.Variant.String(), "sigma", res.Sigma,
		"epsilon_tilde", res.EpsilonTilde, "genobf_calls", res.GenObfCalls,
		"attempts", res.Attempts, "dur", root.Duration())
	return res, nil
}

// interrupted finalizes a cancelled search: it flushes a checkpoint (when
// configured), packages the best-so-far outcome into a partial Result, and
// wraps the cancellation cause. A checkpoint write failure is joined onto
// the returned error — the caller must know its resume file is missing.
func (st *searchState) interrupted(cur *searchCursor, res *Result, cause error) (*Result, error) {
	err := interruptErr(cause, res.GenObfCalls)
	if wErr := st.writeCheckpoint(cur, res); wErr != nil {
		err = errors.Join(err, wErr)
	} else if st.p.CheckpointPath != "" {
		st.p.Obs.Log("core: search checkpointed on interrupt",
			"path", st.p.CheckpointPath, "phase", cur.phase,
			"genobf_calls", res.GenObfCalls)
	}
	res.Graph = cur.best.graph
	res.EpsilonTilde = cur.best.epsilon
	res.Sigma = cur.bestSigma
	return res, err
}

func interruptErr(cause error, calls int) error {
	return fmt.Errorf("core: σ-search interrupted after %d genobf calls: %w", calls, cause)
}

// clearCheckpoint removes a leftover checkpoint once the search completes:
// resuming a finished run from a stale snapshot would silently rerun part
// of the search.
func (st *searchState) clearCheckpoint() {
	if st.p.CheckpointPath == "" {
		return
	}
	if err := removeIfExists(st.p.CheckpointPath); err != nil {
		st.p.Obs.Log("core: removing completed checkpoint failed", "error", err.Error())
	}
}

// searchState holds everything GenObf needs that is invariant across the
// sigma search: the input graph, the privacy/utility scores, the exclusion
// set and the vertex sampling distribution.
type searchState struct {
	g        *uncertain.Graph
	p        Params
	prop     []int // adversary property (default: rounded expected degree)
	excl     map[uncertain.NodeID]bool
	q        []float64 // per-vertex selection weight Q^v (0 for excluded)
	cumQ     []float64 // cumulative weights for sampling
	target   int       // |E_C| target = c*|E|
	seq      uint64    // attempt counter for RNG derivation
	phase    *obs.Span // current search-phase span; genObf nests under it
	gHash    uint64    // cached input fingerprint for checkpoints
	lastCkpt int       // GenObfCalls at the last periodic checkpoint
}

func newSearchState(ctx context.Context, g *uncertain.Graph, p Params) (*searchState, error) {
	n := g.NumNodes()

	uniq := privacy.VertexUniqueness(g)

	var vrr []float64
	if p.Variant.reliabilitySensitive() {
		est := p.estimator(ctx)
		edgeRel := est.EdgeRelevance(g)
		vrr = reliability.NormalizeToUnit(reliability.VertexRelevance(g, edgeRel))
	} else {
		vrr = make([]float64, n)
	}

	// Exclusion: the ceil(eps/2 * |V|) vertices with the largest combined
	// uniqueness-and-relevance score are exempted from obfuscation effort.
	hSize := int(math.Ceil(p.Epsilon / 2 * float64(n)))
	excl := make(map[uncertain.NodeID]bool, hSize)
	if hSize > 0 {
		combined := make([]float64, n)
		for v := 0; v < n; v++ {
			if p.Variant.reliabilitySensitive() {
				combined[v] = uniq[v] * vrr[v]
			} else {
				combined[v] = uniq[v]
			}
		}
		for _, v := range topK(combined, hSize) {
			excl[uncertain.NodeID(v)] = true
		}
	}

	// Selection weight: proportional to uniqueness, inversely proportional
	// to (normalized) reliability relevance. VRR is re-normalized over the
	// non-excluded vertices per Algorithm 3 line 5.
	maxVRR := 0.0
	for v := 0; v < n; v++ {
		if !excl[uncertain.NodeID(v)] && vrr[v] > maxVRR {
			maxVRR = vrr[v]
		}
	}
	q := make([]float64, n)
	for v := 0; v < n; v++ {
		if excl[uncertain.NodeID(v)] {
			continue
		}
		w := uniq[v]
		if p.Variant.reliabilitySensitive() && maxVRR > 0 {
			// Keep a small floor so zero-weight vertices stay reachable.
			w *= 1 - 0.95*(vrr[v]/maxVRR)
		}
		q[v] = w
	}
	cum := make([]float64, n)
	var total float64
	for v := 0; v < n; v++ {
		total += q[v]
		cum[v] = total
	}
	if total <= 0 {
		// Degenerate scores: fall back to uniform over non-excluded.
		total = 0
		for v := 0; v < n; v++ {
			if !excl[uncertain.NodeID(v)] {
				q[v] = 1
			}
			total += q[v]
			cum[v] = total
		}
	}

	target := int(math.Round(p.SizeMultiplier * float64(g.NumEdges())))
	if target < 1 {
		target = 1
	}
	maxPairs := n * (n - 1) / 2
	if target > maxPairs {
		target = maxPairs
	}

	prop := p.Property
	if prop == nil {
		prop = privacy.DegreeProperty(g)
	}
	return &searchState{g: g, p: p, prop: prop, excl: excl, q: q, cumQ: cum, target: target}, nil
}

// topK returns the indices of the k largest scores.
func topK(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine: k is eps/2*|V|, tiny in practice.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
