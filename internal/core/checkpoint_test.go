package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"chameleon/internal/uncertain"
)

// stepCtx is a deterministic cancellation source: it reports itself
// cancelled starting from the limit-th Err() poll. With a variant that
// skips Monte Carlo precompute (ME/Boldi), Err() is polled at a fixed,
// reproducible sequence of points — once after precompute, once per GenObf
// attempt, once per call wrap-up — so a given limit always interrupts the
// search at the same spot.
type stepCtx struct {
	context.Context
	polls atomic.Int64
	limit int64
	done  chan struct{}
}

func newStepCtx(limit int64) *stepCtx {
	return &stepCtx{Context: context.Background(), limit: limit, done: make(chan struct{})}
}

func (c *stepCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func (c *stepCtx) Done() <-chan struct{} { return c.done }

// ckParams configures a search long enough to interrupt at interesting
// depths: K=40 on the 250-node test graph needs real noise, so the
// exponential phase runs ~5 doublings and the bisection ~10 steps (about
// 90 deterministic context polls end to end).
func ckParams(path string) Params {
	return Params{
		K: 40, Epsilon: 0.04, Samples: 60, Seed: 11, Variant: ME,
		CheckpointPath: path,
	}
}

func encodeGraph(t *testing.T, g *uncertain.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := uncertain.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResumeBitIdentical is the core checkpoint/resume guarantee: for a
// range of interruption points — mid-exponential-search, mid-bisection,
// deep into the search — resuming from the written checkpoint yields a
// result bit-identical (graph bytes, sigma, epsilon, effort counters) to
// the uninterrupted run.
func TestResumeBitIdentical(t *testing.T) {
	g := testGraph(t, 5)
	full, err := Anonymize(g, ckParams(""))
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := encodeGraph(t, full.Graph)

	for _, limit := range []int64{2, 8, 20, 45, 80} {
		ckPath := filepath.Join(t.TempDir(), "search.ckpt")
		p := ckParams(ckPath)
		partial, err := AnonymizeContext(newStepCtx(limit), g, p)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("limit %d: interrupted run error = %v, want context.Canceled", limit, err)
		}
		if partial == nil {
			t.Fatalf("limit %d: interrupted run must return a partial result", limit)
		}
		ck, err := LoadCheckpoint(ckPath)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}

		p.Resume = ck
		resumed, err := AnonymizeContext(context.Background(), g, p)
		if err != nil {
			t.Fatalf("limit %d: resumed run: %v", limit, err)
		}
		if resumed.Sigma != full.Sigma || resumed.EpsilonTilde != full.EpsilonTilde {
			t.Errorf("limit %d: resumed (sigma=%v, eps~=%v) != full (sigma=%v, eps~=%v)",
				limit, resumed.Sigma, resumed.EpsilonTilde, full.Sigma, full.EpsilonTilde)
		}
		if resumed.GenObfCalls != full.GenObfCalls || resumed.Attempts != full.Attempts {
			t.Errorf("limit %d: resumed effort (%d calls, %d attempts) != full (%d, %d)",
				limit, resumed.GenObfCalls, resumed.Attempts, full.GenObfCalls, full.Attempts)
		}
		if !bytes.Equal(encodeGraph(t, resumed.Graph), fullBytes) {
			t.Errorf("limit %d: resumed graph bytes differ from uninterrupted run", limit)
		}
		// The completed resume must clean its checkpoint up.
		if _, err := os.Stat(ckPath); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("limit %d: checkpoint survived a completed run (stat err %v)", limit, err)
		}
	}
}

// TestInterruptReturnsBestSoFar: once the exponential phase has found any
// feasible obfuscation, an interrupt mid-bisection still hands the caller
// a usable graph.
func TestInterruptReturnsBestSoFar(t *testing.T) {
	g := testGraph(t, 5)
	// Limit 45 is deep enough to be in bisection for this graph/seed (the
	// bit-identical test above exercises the same point).
	partial, err := AnonymizeContext(newStepCtx(45), g, ckParams(""))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if partial.Graph == nil {
		t.Fatal("interrupt after a feasible sigma was found must return the best-so-far graph")
	}
	if partial.EpsilonTilde > 0.04 {
		t.Fatalf("best-so-far eps~ = %v exceeds the tolerance", partial.EpsilonTilde)
	}
}

func TestAnonymizeContextPreCancelled(t *testing.T) {
	g := testGraph(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, variant := range []Variant{RSME, ME} {
		p := ckParams("")
		p.Variant = variant
		res, err := AnonymizeContext(ctx, g, p)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: error = %v, want context.Canceled", variant, err)
		}
		if res != nil && res.Graph != nil {
			t.Fatalf("%v: pre-cancelled run produced a graph", variant)
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	g := testGraph(t, 5)
	ckPath := filepath.Join(t.TempDir(), "search.ckpt")
	p := ckParams(ckPath)
	if _, err := AnonymizeContext(newStepCtx(8), g, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup: %v", err)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("different graph", func(t *testing.T) {
		other := testGraph(t, 6)
		p := ckParams("")
		p.Resume = ck
		if _, err := AnonymizeContext(context.Background(), other, p); err == nil {
			t.Fatal("resume against a different graph must fail")
		}
	})
	t.Run("different params", func(t *testing.T) {
		p := ckParams("")
		p.Resume = ck
		p.Seed++
		if _, err := AnonymizeContext(context.Background(), g, p); err == nil {
			t.Fatal("resume with a different seed must fail")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := *ck
		bad.Version = CheckpointVersion + 1
		path := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := bad.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(path); err == nil {
			t.Fatal("version mismatch must fail to load")
		}
	})
	t.Run("bad phase", func(t *testing.T) {
		bad := *ck
		bad.Phase = "warp"
		path := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := bad.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(path); err == nil {
			t.Fatal("unknown phase must fail to load")
		}
	})
}

// TestPeriodicCheckpointCadence: -checkpoint-every style runs write during
// the search (observable mid-run) and clean up on completion.
func TestPeriodicCheckpointCadence(t *testing.T) {
	g := testGraph(t, 5)
	ckPath := filepath.Join(t.TempDir(), "search.ckpt")
	p := ckParams(ckPath)
	p.CheckpointEvery = 1

	// Interrupt late: the periodic cadence must already have produced a
	// loadable checkpoint even before the interrupt flush (checkpoint file
	// content is then overwritten by the interrupt write, which is fine).
	if _, err := AnonymizeContext(newStepCtx(20), g, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup: %v", err)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.GenObfCalls == 0 {
		t.Fatal("checkpoint should record completed genobf calls")
	}
	if len(ck.Steps) != ck.GenObfCalls {
		t.Fatalf("step log has %d entries for %d calls", len(ck.Steps), ck.GenObfCalls)
	}

	// A run allowed to finish removes the checkpoint.
	if _, err := AnonymizeContext(context.Background(), g, p); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint survived a completed run (stat err %v)", err)
	}
}

func TestGraphHashSensitivity(t *testing.T) {
	g := testGraph(t, 5)
	h1 := GraphHash(g)
	if h1 != GraphHash(g.Clone()) {
		t.Fatal("hash must be stable across clones")
	}
	mod := g.Clone()
	if err := mod.SetProb(0, 0.123456789); err != nil {
		t.Fatal(err)
	}
	if GraphHash(mod) == h1 {
		t.Fatal("probability change must change the hash")
	}
}
