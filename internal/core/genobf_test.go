package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/privacy"
	"chameleon/internal/uncertain"
)

func newState(t *testing.T, g *uncertain.Graph, p Params) *searchState {
	t.Helper()
	st, err := newSearchState(context.Background(), g, p.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSelectCandidatesReachesTarget(t *testing.T) {
	g := testGraph(t, 10)
	p := Params{K: 5, Epsilon: 0.04, Samples: 50, Seed: 1, SizeMultiplier: 1.5}
	st := newState(t, g, p)
	rng := rand.New(rand.NewPCG(1, 2))
	cands := st.selectCandidates(rng)
	if got, want := len(cands), st.target; got != want {
		t.Fatalf("candidate set size %d, want %d", got, want)
	}
	// Candidates must be unique pairs and include no self loops.
	seen := map[[2]uncertain.NodeID]bool{}
	for _, c := range cands {
		if c.u == c.v {
			t.Fatal("self loop in candidates")
		}
		key := [2]uncertain.NodeID{c.u, c.v}
		if seen[key] {
			t.Fatalf("duplicate candidate %v", key)
		}
		seen[key] = true
		if c.orig >= 0 {
			if g.EdgeIndex(c.u, c.v) != c.orig {
				t.Fatal("existing candidate index mismatch")
			}
			if c.p != g.Edge(c.orig).P {
				t.Fatal("existing candidate probability mismatch")
			}
		} else if c.p != 0 {
			t.Fatal("injected candidate must start at p=0")
		}
	}
}

func TestSelectCandidatesExcludedNeverSampled(t *testing.T) {
	g := testGraph(t, 11)
	p := Params{K: 5, Epsilon: 0.2, Samples: 50, Seed: 1}
	st := newState(t, g, p)
	if len(st.excl) == 0 {
		t.Fatal("test needs a nonempty exclusion set")
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 5000; i++ {
		if st.excl[st.sampleVertex(rng)] {
			t.Fatal("sampled an excluded vertex")
		}
	}
}

func TestPerturbKeepsProbabilitiesValid(t *testing.T) {
	g := testGraph(t, 12)
	for _, variant := range []Variant{RSME, RS, ME, Boldi} {
		p := Params{K: 5, Epsilon: 0.04, Samples: 50, Seed: 2, Variant: variant}
		st := newState(t, g, p)
		rng := rand.New(rand.NewPCG(5, 6))
		cands := st.selectCandidates(rng)
		pub := st.perturb(cands, 0.8, rng)
		for i := 0; i < pub.NumEdges(); i++ {
			pr := pub.Edge(i).P
			if pr < 0 || pr > 1 || math.IsNaN(pr) {
				t.Fatalf("%v: edge %d has probability %v", variant, i, pr)
			}
		}
		if pub.NumNodes() != g.NumNodes() {
			t.Fatalf("%v: vertex set changed", variant)
		}
	}
}

func TestMEPerturbationMovesTowardHalf(t *testing.T) {
	// The guided scheme p~ = p + (1-2p) r with r in [0,1] never increases
	// |p - 1/2|.
	f := func(pRaw, rRaw float64) bool {
		p := math.Abs(math.Mod(pRaw, 1))
		r := math.Abs(math.Mod(rRaw, 1))
		pNew := p + (1-2*p)*r
		return pNew >= -1e-12 && pNew <= 1+1e-12 &&
			math.Abs(pNew-0.5) <= math.Abs(p-0.5)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbAllGuidedRaisesEntropy(t *testing.T) {
	// On a deterministic graph the guided scheme strictly raises total
	// degree entropy for any meaningful sigma.
	g := uncertain.New(20)
	for i := 0; i < 19; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i+1), 1)
	}
	base := privacy.TotalDegreeEntropy(g)
	pert := PerturbAll(g, true, 0.3, 0.01, 1)
	if gain := privacy.TotalDegreeEntropy(pert) - base; gain <= 0 {
		t.Fatalf("entropy gain = %v, want positive", gain)
	}
}

func TestPerturbAllGuidedBeatsUnguided(t *testing.T) {
	// Lemma 6: per unit of injected noise, the gradient-ascent direction
	// buys more degree entropy than random-sign noise. Average over seeds
	// to drown the sampling noise.
	g := testGraph(t, 13)
	base := privacy.TotalDegreeEntropy(g)
	var guided, unguided float64
	const trials = 5
	for s := uint64(0); s < trials; s++ {
		guided += privacy.TotalDegreeEntropy(PerturbAll(g, true, 0.25, 0.01, s)) - base
		unguided += privacy.TotalDegreeEntropy(PerturbAll(g, false, 0.25, 0.01, s)) - base
	}
	if guided <= unguided {
		t.Fatalf("guided gain %v should beat unguided %v", guided/trials, unguided/trials)
	}
}

func TestPerturbAllPreservesStructure(t *testing.T) {
	g := testGraph(t, 14)
	pert := PerturbAll(g, true, 0.5, 0.01, 9)
	if pert.NumEdges() != g.NumEdges() || pert.NumNodes() != g.NumNodes() {
		t.Fatal("PerturbAll must keep the edge set, changing only probabilities")
	}
	for i := 0; i < pert.NumEdges(); i++ {
		if p := pert.Edge(i).P; p < 0 || p > 1 {
			t.Fatalf("edge %d probability %v", i, p)
		}
	}
}

func TestGenObfOutcome(t *testing.T) {
	if (genObfOutcome{epsilon: 1}).ok() {
		t.Fatal("epsilon=1 is failure")
	}
	if !(genObfOutcome{epsilon: 0.01}).ok() {
		t.Fatal("epsilon<1 is success")
	}
}

func TestGenObfRespectsEpsilon(t *testing.T) {
	g := testGraph(t, 15)
	p := Params{K: 6, Epsilon: 0.04, Samples: 60, Seed: 11}.withDefaults()
	st := newState(t, g, p)
	res := &Result{}
	out := st.genObf(context.Background(), 0.05, res)
	if out.ok() && out.epsilon > p.Epsilon {
		t.Fatalf("successful outcome with eps~ %v > eps %v", out.epsilon, p.Epsilon)
	}
	if res.GenObfCalls != 1 || res.Attempts != p.Attempts {
		t.Fatalf("effort accounting wrong: %+v", res)
	}
}

func TestInjectedEdgePruning(t *testing.T) {
	// With sigma ~ 0, injected candidates draw r ~ 0 and must be dropped
	// rather than materialized as junk edges.
	g := testGraph(t, 16)
	p := Params{K: 5, Epsilon: 0.04, Samples: 50, Seed: 3, WhiteNoise: -1}
	st := newState(t, g, p.withDefaults())
	rng := rand.New(rand.NewPCG(7, 8))
	cands := st.selectCandidates(rng)
	pub := st.perturb(cands, 1e-9, rng)
	if pub.NumEdges() > g.NumEdges() {
		t.Fatalf("near-zero noise should not add edges: %d -> %d", g.NumEdges(), pub.NumEdges())
	}
}
