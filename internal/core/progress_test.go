package core

import (
	"testing"

	"chameleon/internal/obs"
)

func TestBisectionSteps(t *testing.T) {
	cases := []struct {
		width, tol float64
		want       int
	}{
		{0.5, 1e-3, 9}, // ceil(log2(500)) = 9
		{1, 1, 0},      // already within tolerance
		{0.001, 0.01, 0},
		{1, 0.5, 1},
		{1, 0, 0}, // degenerate tolerance: treat as done
	}
	for _, c := range cases {
		if got := bisectionSteps(c.width, c.tol); got != c.want {
			t.Errorf("bisectionSteps(%v, %v) = %d, want %d", c.width, c.tol, got, c.want)
		}
	}
}

// TestAnonymizeProgressGauges: a full search leaves run.progress pinned at
// 1 with a zero ETA, having published monotone-meaningful values on the
// way (we check the terminal state plus that the gauges exist at all —
// the trajectory itself is covered by the cursor math above).
func TestAnonymizeProgressGauges(t *testing.T) {
	g := testGraph(t, 3)
	o := obs.NewObserver()
	res, err := Anonymize(g, Params{
		K: 8, Epsilon: 0.04, Samples: 150, Seed: 42, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Registry().Snapshot()
	p, ok := snap.Gauges[obs.ProgressGauge]
	if !ok || p != 1 {
		t.Fatalf("%s = %v (present=%v), want 1", obs.ProgressGauge, p, ok)
	}
	if eta := snap.Gauges[obs.ETAGauge]; eta != 0 {
		t.Fatalf("%s = %v after completion, want 0", obs.ETAGauge, eta)
	}
	// The deeper search-forensics attrs on the trace.
	if _, ok := res.Trace.Find("bisection").Attr("steps"); !ok {
		t.Error("bisection span missing the steps attr")
	}
	if _, ok := res.Trace.Find("exponential-search").Attr("doublings"); !ok {
		t.Error("exponential-search span missing the doublings attr")
	}
	gsp := res.Trace.Find("genobf")
	if gsp == nil {
		t.Fatal("no genobf span")
	}
	if v, ok := gsp.Attr("call"); !ok || v.(int) != 1 {
		t.Errorf("first genobf call attr = %v (present=%v), want 1", v, ok)
	}
}

// TestProgressWindowMapping: an outer harness's base/span slice maps the
// search fraction into its slot of the bar and suppresses the ETA gauge,
// which the harness owns.
func TestProgressWindowMapping(t *testing.T) {
	g := testGraph(t, 3)
	o := obs.NewObserver()
	_, err := Anonymize(g, Params{
		K: 8, Epsilon: 0.04, Samples: 150, Seed: 42, Obs: o,
		ProgressBase: 0.25, ProgressSpan: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Registry().Snapshot()
	if p := snap.Gauges[obs.ProgressGauge]; p != 0.5 {
		t.Fatalf("windowed terminal progress = %v, want base+span = 0.5", p)
	}
	if _, ok := snap.Gauges[obs.ETAGauge]; ok {
		t.Fatal("windowed search must not publish the ETA gauge")
	}
}

// TestAnonymizeProgressNilObserver: the plumbing must stay nil-safe.
func TestAnonymizeProgressNilObserver(t *testing.T) {
	g := testGraph(t, 3)
	if _, err := Anonymize(g, Params{K: 8, Epsilon: 0.04, Samples: 150, Seed: 42}); err != nil {
		t.Fatal(err)
	}
}
