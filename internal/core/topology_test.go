package core

import (
	"math/rand/v2"
	"testing"

	"chameleon/internal/gen"
	"chameleon/internal/privacy"
	"chameleon/internal/uncertain"
)

// TestAnonymizeAcrossTopologies is the robustness soak: every method must
// produce a valid, verifiable obfuscation across structurally different
// workloads — preferential attachment, uniform random, small world and
// community-structured graphs, with all three probability profiles.
func TestAnonymizeAcrossTopologies(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	discrete := gen.DiscreteProbs(
		[]float64{0.13, 0.28, 0.46, 0.64, 0.80},
		[]float64{0.15, 0.23, 0.27, 0.22, 0.13},
	)
	builders := []struct {
		name  string
		build func() (*uncertain.Graph, error)
	}{
		{"ba-discrete", func() (*uncertain.Graph, error) {
			return gen.BarabasiAlbert(150, 3, discrete, rng)
		}},
		{"er-uniform", func() (*uncertain.Graph, error) {
			return gen.ErdosRenyi(150, 500, gen.UniformProbs(0.1, 0.9), rng)
		}},
		{"ws-small", func() (*uncertain.Graph, error) {
			return gen.WattsStrogatz(150, 3, 0.15, gen.SmallProbs(0.3), rng)
		}},
		{"sbm-uniform", func() (*uncertain.Graph, error) {
			return gen.SBM(150, 3, 0.12, 0.01, gen.UniformProbs(0.3, 0.9), rng)
		}},
	}
	const k, eps = 5, 0.06
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			g, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			for _, variant := range []Variant{RSME, ME} {
				res, err := Anonymize(g, Params{
					K: k, Epsilon: eps, Samples: 80, Seed: 5, Variant: variant,
				})
				if err != nil {
					t.Fatalf("%v on %s: %v", variant, b.name, err)
				}
				rep, err := privacy.CheckObfuscation(res.Graph, privacy.DegreeProperty(g), k)
				if err != nil {
					t.Fatal(err)
				}
				if rep.EpsilonTilde > eps {
					t.Fatalf("%v on %s: eps~ %v > %v", variant, b.name, rep.EpsilonTilde, eps)
				}
				for i := 0; i < res.Graph.NumEdges(); i++ {
					if p := res.Graph.Edge(i).P; p < 0 || p > 1 {
						t.Fatalf("%v on %s: invalid probability %v", variant, b.name, p)
					}
				}
			}
		})
	}
}
