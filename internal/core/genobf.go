package core

import (
	"context"
	"math/rand/v2"
	"sort"

	"chameleon/internal/obs"
	"chameleon/internal/privacy"
	"chameleon/internal/truncnorm"
	"chameleon/internal/uncertain"
)

// genObfOutcome is the <eps~, G~> pair returned by GenObf; epsilon == 1
// signals failure (no trial achieved the tolerance).
type genObfOutcome struct {
	epsilon float64
	graph   *uncertain.Graph
}

func (o genObfOutcome) ok() bool { return o.epsilon < 1 }

// minInjectedProb is the floor below which an injected (previously
// absent) edge is not materialized in the published graph.
const minInjectedProb = 1e-3

// candidate is one member of the perturbation set E_C: either an existing
// edge (orig >= 0, p = original probability) or an injected non-edge
// (orig < 0, p = 0).
type candidate struct {
	u, v uncertain.NodeID
	p    float64
	orig int // index into g's edge list, or -1 for a new edge
}

// genObfCtx runs one GenObf call under a context. A call cut short by
// cancellation is discarded wholesale: the RNG stream position and the
// call/attempt totals are rolled back to their pre-call values, so a
// resumed run replays the call from scratch and walks the exact RNG
// sequence an uninterrupted run would have — the property the bit-identical
// resume guarantee rests on.
func (st *searchState) genObfCtx(ctx context.Context, sigma float64, res *Result) (genObfOutcome, error) {
	seqBefore := st.seq
	callsBefore, attemptsBefore := res.GenObfCalls, res.Attempts
	out := st.genObf(ctx, sigma, res)
	if err := ctx.Err(); err != nil {
		st.seq = seqBefore
		res.GenObfCalls, res.Attempts = callsBefore, attemptsBefore
		return genObfOutcome{}, err
	}
	return out, nil
}

// genObf implements Algorithm 3: t randomized trials of edge selection and
// perturbation at noise level sigma, returning the trial with the smallest
// achieved epsilon~ that meets the tolerance, or epsilon~ = 1 on failure.
// Cancellation is honored between attempts; a partial call's outcome is
// discarded by genObfCtx.
func (st *searchState) genObf(ctx context.Context, sigma float64, res *Result) genObfOutcome {
	res.GenObfCalls++
	reg := st.p.Obs.Registry()
	reg.Counter("core.genobf_calls").Inc()
	sp := st.phase.StartChild("genobf")
	sp.SetAttr("sigma", sigma)
	sp.SetAttr("call", res.GenObfCalls)

	best := genObfOutcome{epsilon: 1}
	for t := 0; t < st.p.Attempts; t++ {
		if ctx.Err() != nil {
			break
		}
		res.Attempts++
		reg.Counter("core.genobf_attempts").Inc()
		asp := sp.StartChild("attempt")
		asp.SetAttr("sigma", sigma)
		st.seq++
		rng := rand.New(rand.NewPCG(st.p.Seed^0xC0DEC0DE, st.seq))
		cands := st.selectCandidates(rng)
		pub := st.perturb(cands, sigma, rng)
		// Injected candidates that survived perturbation: pub keeps every
		// original edge, so the edge-count delta is exactly the re-injected
		// non-edges.
		asp.SetAttr("injected_edges", pub.NumEdges()-st.g.NumEdges())
		rep, err := privacy.CheckObfuscation(pub, st.prop, st.p.K)
		if err != nil {
			asp.SetAttr("ok", false)
			asp.SetAttr("error", err.Error())
			asp.End()
			continue
		}
		accepted := rep.EpsilonTilde <= st.p.Epsilon
		asp.SetAttr("epsilon_tilde", rep.EpsilonTilde)
		asp.SetAttr("ok", accepted)
		asp.End()
		if accepted {
			reg.Counter("core.genobf_accepted").Inc()
		}
		if accepted && rep.EpsilonTilde < best.epsilon {
			best = genObfOutcome{epsilon: rep.EpsilonTilde, graph: pub}
		}
	}
	sp.SetAttr("ok", best.ok())
	if best.ok() {
		sp.SetAttr("epsilon_tilde", best.epsilon)
	}
	sp.End()
	reg.Histogram("core.genobf_seconds", obs.TimeBuckets).ObserveDuration(sp.Duration())
	st.p.Obs.Debug("core: genobf", "sigma", sigma, "ok", best.ok(),
		"epsilon_tilde", best.epsilon, "dur", sp.Duration())
	return best
}

// sampleVertex draws a vertex from the Q distribution by binary search on
// the cumulative weights.
func (st *searchState) sampleVertex(rng *rand.Rand) uncertain.NodeID {
	total := st.cumQ[len(st.cumQ)-1]
	x := rng.Float64() * total
	i := sort.SearchFloat64s(st.cumQ, x)
	if i >= len(st.cumQ) {
		i = len(st.cumQ) - 1
	}
	return uncertain.NodeID(i)
}

// selectCandidates builds E_C (Algorithm 3 lines 9-16): it starts from the
// full edge set, then repeatedly samples vertex pairs from Q; an existing
// sampled edge is excluded from E_C with probability p(e) (protecting
// reliable edges from perturbation), a sampled non-edge is added as an
// injection candidate. The loop ends when |E_C| reaches c*|E| (or an
// iteration cap, to stay robust on dense graphs).
func (st *searchState) selectCandidates(rng *rand.Rand) []candidate {
	g := st.g
	m := g.NumEdges()
	removed := make(map[int]bool)
	addedSet := make(map[[2]uncertain.NodeID]bool)
	var added [][2]uncertain.NodeID // insertion order: keeps the trial deterministic per seed
	size := m
	maxIter := 64 * (st.target + 16)
	for iter := 0; size != st.target && iter < maxIter; iter++ {
		u := st.sampleVertex(rng)
		v := st.sampleVertex(rng)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if ei := g.EdgeIndex(u, v); ei >= 0 {
			if !removed[ei] && size > 0 {
				e := g.Edge(ei)
				if rng.Float64() < e.P {
					removed[ei] = true
					size--
				}
			}
		} else if size < st.target && !addedSet[[2]uncertain.NodeID{u, v}] {
			addedSet[[2]uncertain.NodeID{u, v}] = true
			added = append(added, [2]uncertain.NodeID{u, v})
			size++
		}
	}
	cands := make([]candidate, 0, size)
	for i := 0; i < m; i++ {
		if !removed[i] {
			e := g.Edge(i)
			cands = append(cands, candidate{u: e.U, v: e.V, p: e.P, orig: i})
		}
	}
	for _, pair := range added {
		cands = append(cands, candidate{u: pair[0], v: pair[1], p: 0, orig: -1})
	}
	return cands
}

// perturb applies the per-edge noise to the candidate set and materializes
// the published graph. Noise budget sigma is redistributed across
// candidates proportionally to their uncertainty level
// Q^e = (Q^u + Q^v)/2, so that the mean of sigma(e) equals sigma. With
// probability q (white noise) the draw is uniform on [0,1] instead of
// truncated-normal.
//
// Max-entropy variants move the probability toward 1/2 along the entropy
// gradient: p~ = p + (1-2p) * r (Section V-F, Lemma 6). The unguided RS
// variant applies the same magnitude with a random sign, clamped to [0,1].
func (st *searchState) perturb(cands []candidate, sigma float64, rng *rand.Rand) *uncertain.Graph {
	var sumQ float64
	qe := make([]float64, len(cands))
	for i, c := range cands {
		qe[i] = (st.q[c.u] + st.q[c.v]) / 2
		sumQ += qe[i]
	}
	pub := st.g.Clone()
	useME := st.p.Variant.maxEntropy()
	for i, c := range cands {
		var sigmaE float64
		if sumQ > 0 {
			sigmaE = sigma * float64(len(cands)) * qe[i] / sumQ
		} else {
			sigmaE = sigma
		}
		var r float64
		if rng.Float64() < st.p.whiteNoise() {
			r = rng.Float64()
		} else {
			r = truncnorm.Sample(rng, sigmaE)
		}
		var pNew float64
		if useME {
			pNew = c.p + (1-2*c.p)*r
		} else {
			if rng.Float64() < 0.5 {
				r = -r
			}
			pNew = c.p + r
			if pNew < 0 {
				pNew = 0
			} else if pNew > 1 {
				pNew = 1
			}
		}
		if c.orig >= 0 {
			// Existing edge: overwrite its probability.
			if err := pub.SetProb(c.orig, pNew); err != nil {
				panic(err) // unreachable: pNew is clamped and index valid
			}
		} else if pNew > minInjectedProb {
			// Injected edge. Draws that land at a negligible probability
			// are dropped: they carry no entropy or reliability mass but
			// would bloat the published edge list.
			if err := pub.AddEdge(c.u, c.v, pNew); err != nil {
				panic(err) // unreachable: pair validated at selection
			}
		}
	}
	return pub
}
