package core

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"chameleon/internal/gen"
	"chameleon/internal/privacy"
	"chameleon/internal/uncertain"
)

// testGraph builds a 250-node heavy-tailed uncertain graph, big enough for
// the k values used in the tests but fast to anonymize.
func testGraph(t testing.TB, seed uint64) *uncertain.Graph {
	t.Helper()
	pa := gen.DiscreteProbs(
		[]float64{0.13, 0.28, 0.46, 0.64, 0.80},
		[]float64{0.15, 0.23, 0.27, 0.22, 0.13},
	)
	g, err := gen.BarabasiAlbert(250, 3, pa, rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{RSME: "RSME", RS: "RS", ME: "ME", Boldi: "Boldi", Variant(9): "Variant(9)"}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestVariantFlags(t *testing.T) {
	if !RSME.reliabilitySensitive() || !RS.reliabilitySensitive() {
		t.Fatal("RSME and RS must be reliability sensitive")
	}
	if ME.reliabilitySensitive() || Boldi.reliabilitySensitive() {
		t.Fatal("ME and Boldi must not be reliability sensitive")
	}
	if !RSME.maxEntropy() || !ME.maxEntropy() || !Boldi.maxEntropy() {
		t.Fatal("RSME, ME and Boldi use the guided perturbation")
	}
	if RS.maxEntropy() {
		t.Fatal("RS uses unguided perturbation")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.SizeMultiplier != 2.0 || p.Attempts != 5 {
		t.Fatalf("defaults wrong: %+v", p)
	}
	if p.SigmaTolerance != 1e-3 || p.MaxDoublings != 8 {
		t.Fatalf("search defaults wrong: %+v", p)
	}
	// withDefaults must be idempotent.
	p2 := p.withDefaults()
	if p2.SizeMultiplier != p.SizeMultiplier || p2.Attempts != p.Attempts ||
		p2.SigmaTolerance != p.SigmaTolerance || p2.MaxDoublings != p.MaxDoublings ||
		p2.WhiteNoise != p.WhiteNoise {
		t.Fatal("withDefaults should be idempotent")
	}
	// White noise resolution: 0 means default, negative disables.
	if got := (Params{}).whiteNoise(); got != 0.01 {
		t.Fatalf("default white noise = %v, want 0.01", got)
	}
	if got := (Params{WhiteNoise: -1}).whiteNoise(); got != 0 {
		t.Fatalf("disabled white noise = %v, want 0", got)
	}
	if got := (Params{WhiteNoise: 0.2}).whiteNoise(); got != 0.2 {
		t.Fatalf("explicit white noise = %v, want 0.2", got)
	}
}

func TestValidate(t *testing.T) {
	g := testGraph(t, 1)
	cases := []struct {
		name string
		g    *uncertain.Graph
		p    Params
	}{
		{"nil graph", nil, Params{K: 2}},
		{"empty graph", uncertain.New(0), Params{K: 2}},
		{"edgeless graph", uncertain.New(5), Params{K: 2}},
		{"k too small", g, Params{K: 1}},
		{"k exceeds nodes", g, Params{K: g.NumNodes() + 1}},
		{"negative epsilon", g, Params{K: 5, Epsilon: -0.1}},
		{"epsilon one", g, Params{K: 5, Epsilon: 1}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.withDefaults().validate(tt.g); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
}

func TestAnonymizeAchievesObfuscation(t *testing.T) {
	g := testGraph(t, 2)
	const k, eps = 8, 0.04
	for _, variant := range []Variant{RSME, RS, ME, Boldi} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			res, err := Anonymize(g, Params{
				K: k, Epsilon: eps, Samples: 150, Seed: 42, Variant: variant,
			})
			if err != nil {
				t.Fatalf("Anonymize: %v", err)
			}
			if res.EpsilonTilde > eps {
				t.Fatalf("eps~ = %v exceeds eps = %v", res.EpsilonTilde, eps)
			}
			// Independent re-check of the published graph.
			rep, err := privacy.CheckObfuscation(res.Graph, privacy.DegreeProperty(g), k)
			if err != nil {
				t.Fatal(err)
			}
			if rep.EpsilonTilde > eps {
				t.Fatalf("independent check: eps~ = %v exceeds %v", rep.EpsilonTilde, eps)
			}
			if res.Graph.NumNodes() != g.NumNodes() {
				t.Fatal("anonymization must preserve the vertex set")
			}
			if res.GenObfCalls == 0 || res.Attempts == 0 {
				t.Fatal("result should report search effort")
			}
			if res.Variant != variant {
				t.Fatalf("result variant %v, want %v", res.Variant, variant)
			}
		})
	}
}

func TestAnonymizeDeterministicPerSeed(t *testing.T) {
	g := testGraph(t, 3)
	p := Params{K: 6, Epsilon: 0.04, Samples: 100, Seed: 7, Variant: RSME}
	r1, err := Anonymize(g, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Anonymize(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Graph.Equal(r2.Graph) {
		t.Fatal("same seed must produce the same published graph")
	}
	if r1.Sigma != r2.Sigma || r1.EpsilonTilde != r2.EpsilonTilde {
		t.Fatal("same seed must produce the same search outcome")
	}
}

func TestAnonymizeDoesNotMutateInput(t *testing.T) {
	g := testGraph(t, 4)
	before := g.Clone()
	if _, err := Anonymize(g, Params{K: 5, Epsilon: 0.05, Samples: 80, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(before) {
		t.Fatal("Anonymize must not mutate its input")
	}
}

func TestAnonymizeInfeasible(t *testing.T) {
	// A certain star cannot k-obfuscate its center for large k with
	// eps = 0: every vertex must pass, including the unique hub.
	g := uncertain.New(40)
	for i := 1; i < 40; i++ {
		g.MustAddEdge(0, uncertain.NodeID(i), 1)
	}
	_, err := Anonymize(g, Params{
		K: 39, Epsilon: 0, Samples: 50, Seed: 1, MaxDoublings: 3, Attempts: 2,
	})
	if !errors.Is(err, ErrNoObfuscation) {
		t.Fatalf("want ErrNoObfuscation, got %v", err)
	}
}

func TestAnonymizeValidatesParams(t *testing.T) {
	g := testGraph(t, 5)
	if _, err := Anonymize(g, Params{K: 0}); err == nil {
		t.Fatal("invalid params must be rejected")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.2}
	got := topK(scores, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("topK = %v, want [1 3]", got)
	}
	if len(topK(scores, 10)) != 5 {
		t.Fatal("k beyond length should clamp")
	}
	if len(topK(scores, 0)) != 0 {
		t.Fatal("k=0 should give empty")
	}
}

func TestResultEpsilonWithinTolerance(t *testing.T) {
	g := testGraph(t, 6)
	res, err := Anonymize(g, Params{K: 5, Epsilon: 0.05, Samples: 80, Seed: 3, Variant: ME})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sigma <= 0 {
		t.Fatalf("sigma = %v, want positive", res.Sigma)
	}
	if strings.TrimSpace(res.Variant.String()) == "" {
		t.Fatal("variant should render")
	}
}

func TestCustomAdversaryProperty(t *testing.T) {
	g := testGraph(t, 20)
	// A coarse adversary only knows degree buckets of width 4: weaker
	// knowledge, so obfuscation should need no more noise than against
	// the exact-degree adversary.
	coarse := privacy.DegreeProperty(g)
	for i := range coarse {
		coarse[i] /= 4
	}
	resCoarse, err := Anonymize(g, Params{
		K: 8, Epsilon: 0.04, Samples: 100, Seed: 3, Property: coarse,
	})
	if err != nil {
		t.Fatalf("coarse adversary: %v", err)
	}
	resExact, err := Anonymize(g, Params{
		K: 8, Epsilon: 0.04, Samples: 100, Seed: 3,
	})
	if err != nil {
		t.Fatalf("exact adversary: %v", err)
	}
	if resCoarse.Sigma > resExact.Sigma+1e-9 {
		t.Fatalf("weaker adversary should not need more noise: %v vs %v",
			resCoarse.Sigma, resExact.Sigma)
	}
}

func TestPropertyLengthValidated(t *testing.T) {
	g := testGraph(t, 21)
	if _, err := Anonymize(g, Params{K: 5, Epsilon: 0.05, Property: []int{1, 2}}); err == nil {
		t.Fatal("short property vector should be rejected")
	}
}
