// Package core implements the Chameleon anonymization framework: the
// binary-search skeleton of Algorithm 1, the GenObf procedure of
// Algorithm 3, the reliability-sensitive edge selection (RS) and the
// anonymity-oriented max-entropy perturbation (ME), plus the ablation
// variants evaluated in the paper (Table II).
package core

import (
	"context"
	"errors"
	"fmt"

	"chameleon/internal/obs"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// Variant selects the combination of edge-selection and perturbation
// heuristics (Table II of the paper).
type Variant int

const (
	// RSME is full Chameleon: reliability-sensitive edge selection plus
	// max-entropy (anonymity-oriented) probability perturbation.
	RSME Variant = iota
	// RS uses reliability-sensitive selection with unguided (random-sign)
	// perturbation.
	RS
	// ME uses uniqueness-only selection with max-entropy perturbation.
	ME
	// Boldi is the conventional uncertainty-injection scheme of [7],
	// oblivious to reliability: uniqueness-only selection with the binary
	// injection formula. On deterministic (0/1) inputs this is exactly the
	// published algorithm; it is the obfuscator used inside Rep-An.
	Boldi
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case RSME:
		return "RSME"
	case RS:
		return "RS"
	case ME:
		return "ME"
	case Boldi:
		return "Boldi"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// reliabilitySensitive reports whether the variant weights selection by
// vertex reliability relevance.
func (v Variant) reliabilitySensitive() bool { return v == RSME || v == RS }

// maxEntropy reports whether the variant uses the guided (gradient-ascent)
// perturbation p~ = p + (1-2p)*r. The Boldi scheme uses the same formula —
// it is the deterministic special case — so only RS uses random-sign noise.
func (v Variant) maxEntropy() bool { return v != RS }

// Params configures one anonymization run.
type Params struct {
	// K is the obfuscation level: every non-skipped vertex must hide in an
	// entropy of at least log2(K) candidates (Definition 3).
	K int
	// Epsilon is the tolerance: the fraction of vertices allowed to stay
	// under-obfuscated.
	Epsilon float64
	// Variant selects the heuristic combination; default RSME.
	Variant Variant

	// SizeMultiplier is the candidate-set size factor c (|E_C| = c*|E|);
	// default 2.0.
	SizeMultiplier float64
	// WhiteNoise is the uniform-noise floor q; default 0.01. Pass a
	// negative value to disable white noise entirely.
	WhiteNoise float64
	// Attempts is the number of randomized trials t per GenObf call;
	// default 5.
	Attempts int
	// Samples is the Monte Carlo budget for reliability-relevance
	// estimation; default reliability.DefaultSamples.
	Samples int
	// SamplingMode selects the world-drawing strategy of the run's
	// reliability estimators (default independent; see
	// uncertain.SamplingMode for the antithetic / stratified / coupled
	// variance-reduction trade-offs).
	SamplingMode uncertain.SamplingMode
	// TargetRSE, when positive, switches the run's estimators to adaptive
	// sequential stopping at the given relative standard error, with
	// MaxSamples as the hard cap. See reliability.Estimator.
	TargetRSE float64
	// MaxSamples caps adaptive sampling; 0 = reliability.DefaultMaxSamples.
	// Ignored without TargetRSE.
	MaxSamples int
	// Workers caps sampling parallelism; 0 = GOMAXPROCS.
	Workers int
	// Seed makes the run reproducible.
	Seed uint64
	// Cache, when non-nil, is handed to the run's reliability estimators so
	// sampled component labelings survive across calls. Callers evaluating
	// utility after the run (sweep cells, the ugstat pipeline) should pass
	// the same cache to their evaluation estimator: the original graph is
	// then sampled and labeled once for the whole search-plus-evaluation
	// sequence instead of once per estimator call.
	Cache *reliability.LabelCache

	// Property overrides the adversary's per-vertex auxiliary knowledge
	// (Definition 3's vertex property P). Empty means the paper's choice:
	// the rounded expected degree. Supplying a coarser property models a
	// weaker adversary; it must have length |V|.
	Property []int

	// CheckpointPath, when non-empty, is where the σ-search persists its
	// resumable state: written atomically (temp file + rename) on
	// interrupt, and additionally every CheckpointEvery GenObf calls.
	// Removed when the search completes.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint cadence in GenObf calls;
	// 0 checkpoints only on interrupt.
	CheckpointEvery int
	// Resume, when non-nil, restores a checkpoint written by an earlier
	// interrupted run. The checkpoint must match the input graph and every
	// search-relevant parameter; the resumed search is deterministic and
	// its result bit-identical to an uninterrupted run.
	Resume *Checkpoint

	// SigmaTolerance terminates the binary search when the bracket width
	// drops below it; default 1e-3.
	SigmaTolerance float64
	// MaxDoublings bounds the initial exponential search; default 8
	// (sigma up to 256).
	MaxDoublings int

	// Obs receives metrics (genObf call/attempt counters, Monte Carlo
	// sampling volume, phase timings) and structured progress logs. Nil
	// disables observability; the search trace in Result.Trace is
	// recorded either way.
	Obs *obs.Observer

	// ProgressBase and ProgressSpan map this search's completion fraction
	// onto the shared run.progress gauge as base + fraction*span. Both
	// zero (the default) means the search owns the whole bar — gauge runs
	// 0→1 and run.eta_seconds is published too. An outer harness running
	// many searches (the experiment sweep) sets them to this cell's slice
	// of the overall grid, so the bar advances monotonically across the
	// sweep instead of saw-toothing per cell; the harness then owns the
	// sweep-wide ETA and the search leaves run.eta_seconds alone.
	ProgressBase float64
	ProgressSpan float64
}

// estimator builds the run's reliability estimator, threading the full
// sampling tuple (budget, seed, mode, adaptive target/cap) so every Monte
// Carlo pass of the search draws from the same configuration.
func (p Params) estimator(ctx context.Context) reliability.Estimator {
	return reliability.Estimator{
		Samples: p.Samples, Seed: p.Seed, Workers: p.Workers,
		Obs: p.Obs, Cache: p.Cache, Mode: p.SamplingMode,
		TargetRSE: p.TargetRSE, MaxSamples: p.MaxSamples, Ctx: ctx,
	}
}

func (p Params) withDefaults() Params {
	if p.SizeMultiplier <= 0 {
		p.SizeMultiplier = 2.0
	}
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.SigmaTolerance <= 0 {
		p.SigmaTolerance = 1e-3
	}
	if p.MaxDoublings <= 0 {
		p.MaxDoublings = 8
	}
	return p
}

// whiteNoise resolves the q parameter: 0 means the 0.01 default, negative
// disables it. Resolved at use time so withDefaults stays idempotent.
func (p Params) whiteNoise() float64 {
	if p.WhiteNoise < 0 {
		return 0
	}
	if p.WhiteNoise == 0 {
		return 0.01
	}
	return p.WhiteNoise
}

func (p Params) validate(g *uncertain.Graph) error {
	if g == nil || g.NumNodes() == 0 {
		return errors.New("core: empty graph")
	}
	if g.NumEdges() == 0 {
		return errors.New("core: graph has no edges to perturb")
	}
	if p.K < 2 {
		return fmt.Errorf("core: k must be >= 2, got %d", p.K)
	}
	if p.K > g.NumNodes() {
		return fmt.Errorf("core: k=%d exceeds |V|=%d", p.K, g.NumNodes())
	}
	if p.Epsilon < 0 || p.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon must be in [0,1), got %v", p.Epsilon)
	}
	if p.Property != nil && len(p.Property) != g.NumNodes() {
		return fmt.Errorf("core: property length %d != |V| %d", len(p.Property), g.NumNodes())
	}
	return nil
}

// Result is the outcome of a successful anonymization.
type Result struct {
	// Graph is the published (k, eps)-obfuscated uncertain graph.
	Graph *uncertain.Graph
	// EpsilonTilde is the achieved fraction of under-obfuscated vertices
	// (<= Params.Epsilon).
	EpsilonTilde float64
	// Sigma is the final noise level selected by the binary search.
	Sigma float64
	// GenObfCalls counts invocations of the GenObf procedure.
	GenObfCalls int
	// Attempts counts individual randomized trials across all calls.
	Attempts int
	// Variant echoes the heuristic combination used.
	Variant Variant
	// Trace is the phase-level search trace: a "precompute" span for the
	// score precomputation, then one span per search phase
	// ("exponential-search", "bisection") whose "genobf" children carry
	// the sigma tried, and whose "attempt" grandchildren carry the
	// per-trial outcome (epsilon_tilde, ok, injected_edges) and wall
	// time. Always recorded; query it with Find/FindAll.
	Trace *obs.Span
}

// ErrNoObfuscation is returned when no sigma within the search budget
// yields a (k, eps)-obfuscation.
var ErrNoObfuscation = errors.New("core: could not find a (k,eps)-obfuscation within the noise budget")
