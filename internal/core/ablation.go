package core

import (
	"math/rand/v2"

	"chameleon/internal/truncnorm"
	"chameleon/internal/uncertain"
)

// PerturbAll applies one perturbation scheme to every edge of g with the
// same noise level sigma, skipping selection and the sigma search. It
// exists for the Section V-F ablation: measuring the degree-entropy gain
// (the anonymity driver of Lemma 5) per unit of injected noise, guided
// (max-entropy) versus unguided (random-sign).
func PerturbAll(g *uncertain.Graph, guided bool, sigma, whiteNoise float64, seed uint64) *uncertain.Graph {
	rng := rand.New(rand.NewPCG(seed, 0xab1a71))
	pub := g.Clone()
	for i := 0; i < g.NumEdges(); i++ {
		p := g.Edge(i).P
		var r float64
		if rng.Float64() < whiteNoise {
			r = rng.Float64()
		} else {
			r = truncnorm.Sample(rng, sigma)
		}
		var pNew float64
		if guided {
			pNew = p + (1-2*p)*r
		} else {
			if rng.Float64() < 0.5 {
				r = -r
			}
			pNew = p + r
			if pNew < 0 {
				pNew = 0
			} else if pNew > 1 {
				pNew = 1
			}
		}
		if err := pub.SetProb(i, pNew); err != nil {
			panic(err) // unreachable: pNew in [0,1], index valid
		}
	}
	return pub
}
