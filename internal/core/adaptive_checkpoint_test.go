package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"chameleon/internal/uncertain"
)

// ckAdaptiveParams configures a reliability-sensitive search under the
// coupled sampler with adaptive stopping — every Monte Carlo knob of ISSUE
// 7 at once. Workers=1 keeps the context-poll sequence deterministic (the
// parallel samplers poll from racing goroutines), which stepCtx needs.
func ckAdaptiveParams(path string) Params {
	return Params{
		K: 40, Epsilon: 0.04, Samples: 60, Seed: 11, Variant: RSME, Workers: 1,
		SamplingMode: uncertain.SampleCoupled, TargetRSE: 0.05, MaxSamples: 512,
		CheckpointPath: path,
	}
}

// TestResumeBitIdenticalCoupledAdaptive extends the resume guarantee to
// the new sampling tuple: a σ-search using coupled draws and sequential
// stopping, interrupted at assorted depths, must resume to a result
// bit-identical to the uninterrupted run. This works because every world
// draw is a pure function of (seed, sample index) — there is no mutable
// RNG cursor beyond Seq to snapshot.
func TestResumeBitIdenticalCoupledAdaptive(t *testing.T) {
	g := testGraph(t, 5)
	full, err := Anonymize(g, ckAdaptiveParams(""))
	if err != nil {
		t.Fatal(err)
	}
	fullBytes := encodeGraph(t, full.Graph)

	// The uninterrupted search polls the context ~94 times for this
	// graph/seed/tuple; limits are spread across that range.
	resumed := 0
	for _, limit := range []int64{15, 40, 60, 85} {
		ckPath := filepath.Join(t.TempDir(), "search.ckpt")
		p := ckAdaptiveParams(ckPath)
		if _, err := AnonymizeContext(newStepCtx(limit), g, p); !errors.Is(err, context.Canceled) {
			t.Fatalf("limit %d: interrupted run error = %v, want context.Canceled", limit, err)
		}
		ck, err := LoadCheckpoint(ckPath)
		if err != nil {
			// Interrupted inside the Monte Carlo precompute, before the first
			// GenObf boundary: nothing to checkpoint yet. Other limits cover
			// the resumable region.
			continue
		}
		resumed++
		if ck.SamplingMode != "coupled" || ck.TargetRSE != 0.05 || ck.MaxSamples != 512 {
			t.Fatalf("limit %d: checkpoint echoes sampling tuple (%s, %v, %d), want (coupled, 0.05, 512)",
				limit, ck.SamplingMode, ck.TargetRSE, ck.MaxSamples)
		}

		p.Resume = ck
		res, err := AnonymizeContext(context.Background(), g, p)
		if err != nil {
			t.Fatalf("limit %d: resumed run: %v", limit, err)
		}
		if res.Sigma != full.Sigma || res.EpsilonTilde != full.EpsilonTilde {
			t.Errorf("limit %d: resumed (sigma=%v, eps~=%v) != full (sigma=%v, eps~=%v)",
				limit, res.Sigma, res.EpsilonTilde, full.Sigma, full.EpsilonTilde)
		}
		if !bytes.Equal(encodeGraph(t, res.Graph), fullBytes) {
			t.Errorf("limit %d: resumed graph bytes differ from uninterrupted run", limit)
		}
	}
	if resumed == 0 {
		t.Fatal("no interruption point produced a resumable checkpoint; deepen the limits")
	}
}

// TestCheckpointRejectsSamplingTupleMismatch: resuming under a different
// sampling mode or stopping target would silently change every estimate of
// the search; the parameter echo must reject it.
func TestCheckpointRejectsSamplingTupleMismatch(t *testing.T) {
	g := testGraph(t, 5)
	ckPath := filepath.Join(t.TempDir(), "search.ckpt")
	if _, err := AnonymizeContext(newStepCtx(60), g, ckAdaptiveParams(ckPath)); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup: %v", err)
	}
	ck, err := LoadCheckpoint(ckPath)
	if err != nil {
		t.Skipf("interrupt landed before the first checkpointable boundary: %v", err)
	}

	for name, mutate := range map[string]func(*Params){
		"sampling mode": func(p *Params) { p.SamplingMode = uncertain.SampleAntithetic },
		"target rse":    func(p *Params) { p.TargetRSE = 0.01 },
		"max samples":   func(p *Params) { p.MaxSamples = 1024 },
	} {
		p := ckAdaptiveParams("")
		p.Resume = ck
		mutate(&p)
		if _, err := AnonymizeContext(context.Background(), g, p); err == nil {
			t.Errorf("resume with changed %s must fail", name)
		}
	}
}
