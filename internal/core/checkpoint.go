package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"

	"chameleon/internal/atomicfile"
	"chameleon/internal/uncertain"
)

// CheckpointVersion is the on-disk checkpoint format version. Loading a
// checkpoint written by a different version fails loudly rather than
// resuming from state with unknown semantics.
//
// Version history:
//
//	1 — initial resumable σ-search snapshot.
//	2 — sampling tuple echoed (sampling_mode, target_rse, max_samples):
//	    the mode and adaptive stopping configuration change every Monte
//	    Carlo estimate of the search, so resuming under a different tuple
//	    would silently change the trajectory. v1 files predate the tuple
//	    and are rejected rather than guessed at.
const CheckpointVersion = 2

// Search phase names as persisted in checkpoints.
const (
	phaseExponential = "exponential"
	phaseBisection   = "bisection"
)

// CheckpointStep records one completed GenObf call of the σ-search: the
// noise level tried and what came back. The step log lets a resumed run —
// or a human reading the file — reconstruct the whole search trajectory.
type CheckpointStep struct {
	Phase   string  `json:"phase"`
	Sigma   float64 `json:"sigma"`
	Epsilon float64 `json:"epsilon_tilde"`
	OK      bool    `json:"ok"`
}

// Checkpoint is a resumable snapshot of the σ-search, taken only at GenObf
// call boundaries (a call cut short by cancellation is discarded, so the
// snapshot never references half-consumed RNG streams). It carries three
// kinds of state:
//
//   - an identity block (format version, input-graph hash, full parameter
//     echo) used to reject resumption against a different input or
//     configuration;
//   - the search cursor (phase, σ bracket, doubling count, RNG stream
//     position Seq, call/attempt totals);
//   - the best obfuscation found so far, with the graph embedded in the
//     exact binary format (float64 bit patterns preserved), so a resumed
//     run finishing from this state is bit-identical to an uninterrupted
//     one.
//
// Everything is plain JSON: floats survive encoding/json round-trips
// bit-exactly, and BestGraph marshals as base64.
type Checkpoint struct {
	Version   int    `json:"version"`
	GraphHash uint64 `json:"graph_hash"`

	// Parameter echo (post-defaults): a resume with any mismatch is an
	// error, because it would silently change the search trajectory.
	K              int     `json:"k"`
	Epsilon        float64 `json:"epsilon"`
	Variant        string  `json:"variant"`
	SizeMultiplier float64 `json:"size_multiplier"`
	WhiteNoise     float64 `json:"white_noise"`
	Attempts       int     `json:"attempts"`
	Samples        int     `json:"samples"`
	SamplingMode   string  `json:"sampling_mode"`
	TargetRSE      float64 `json:"target_rse"`
	MaxSamples     int     `json:"max_samples"`
	Seed           uint64  `json:"seed"`
	SigmaTolerance float64 `json:"sigma_tolerance"`
	MaxDoublings   int     `json:"max_doublings"`

	// Search cursor.
	Phase        string  `json:"phase"`
	SigmaLo      float64 `json:"sigma_lo"`
	SigmaHi      float64 `json:"sigma_hi"`
	Doublings    int     `json:"doublings"`
	Seq          uint64  `json:"seq"`
	GenObfCalls  int     `json:"genobf_calls"`
	AttemptCount int     `json:"attempt_count"`

	// Best obfuscation so far; BestEpsilon == 1 and a nil BestGraph mean
	// none has been found yet.
	BestEpsilon float64 `json:"best_epsilon"`
	BestSigma   float64 `json:"best_sigma"`
	BestGraph   []byte  `json:"best_graph,omitempty"`

	Steps []CheckpointStep `json:"steps"`
}

// GraphHash fingerprints a graph through its canonical binary encoding
// (sorted edges, exact float64 bits), so any difference in topology or
// probabilities — however small — changes the hash.
func GraphHash(g *uncertain.Graph) uint64 {
	h := fnv.New64a()
	// WriteBinary to a hash.Hash cannot fail: the hasher never errors.
	_ = uncertain.WriteBinary(h, g)
	return h.Sum64()
}

// LoadCheckpoint reads and version-checks a checkpoint file. Compatibility
// with a particular graph and parameter set is checked later, by
// AnonymizeContext, once both are in hand.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	ck := new(Checkpoint)
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("core: parsing checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s has format version %d, this build reads %d", path, ck.Version, CheckpointVersion)
	}
	switch ck.Phase {
	case phaseExponential, phaseBisection:
	default:
		return nil, fmt.Errorf("core: checkpoint %s has unknown search phase %q", path, ck.Phase)
	}
	return ck, nil
}

// ErrCheckpointMismatch marks a resume rejected because the checkpoint
// was taken from a different input graph or parameterization. Callers
// that hand checkpoints off across process lives (the job daemon's
// crash-recovery path) match it with errors.Is to distinguish "this
// snapshot is stale — discard it and rerun from scratch" from a genuine
// run failure.
var ErrCheckpointMismatch = errors.New("core: checkpoint does not match this run")

// validateAgainst rejects resumption when the checkpoint was taken from a
// different input graph or parameterization. p must already have defaults
// applied — checkpoints echo post-default values. Every rejection wraps
// ErrCheckpointMismatch.
func (ck *Checkpoint) validateAgainst(g *uncertain.Graph, p Params) error {
	if h := GraphHash(g); h != ck.GraphHash {
		return fmt.Errorf("%w: checkpoint is for a different graph (hash %#x, input hashes to %#x)", ErrCheckpointMismatch, ck.GraphHash, h)
	}
	mismatch := func(field string, ck, now any) error {
		return fmt.Errorf("%w: checkpoint %s mismatch: checkpoint has %v, run has %v", ErrCheckpointMismatch, field, ck, now)
	}
	switch {
	case ck.K != p.K:
		return mismatch("k", ck.K, p.K)
	case ck.Epsilon != p.Epsilon:
		return mismatch("epsilon", ck.Epsilon, p.Epsilon)
	case ck.Variant != p.Variant.String():
		return mismatch("variant", ck.Variant, p.Variant.String())
	case ck.SizeMultiplier != p.SizeMultiplier:
		return mismatch("size multiplier", ck.SizeMultiplier, p.SizeMultiplier)
	case ck.WhiteNoise != p.WhiteNoise:
		return mismatch("white noise", ck.WhiteNoise, p.WhiteNoise)
	case ck.Attempts != p.Attempts:
		return mismatch("attempts", ck.Attempts, p.Attempts)
	case ck.Samples != p.Samples:
		return mismatch("samples", ck.Samples, p.Samples)
	case ck.SamplingMode != p.SamplingMode.String():
		return mismatch("sampling mode", ck.SamplingMode, p.SamplingMode.String())
	case ck.TargetRSE != p.TargetRSE:
		return mismatch("target rse", ck.TargetRSE, p.TargetRSE)
	case ck.MaxSamples != p.MaxSamples:
		return mismatch("max samples", ck.MaxSamples, p.MaxSamples)
	case ck.Seed != p.Seed:
		return mismatch("seed", ck.Seed, p.Seed)
	case ck.SigmaTolerance != p.SigmaTolerance:
		return mismatch("sigma tolerance", ck.SigmaTolerance, p.SigmaTolerance)
	case ck.MaxDoublings != p.MaxDoublings:
		return mismatch("max doublings", ck.MaxDoublings, p.MaxDoublings)
	}
	return nil
}

// WriteFile persists the checkpoint atomically (temp file + rename), so an
// interrupt during the write never leaves a torn checkpoint behind.
func (ck *Checkpoint) WriteFile(path string) error {
	return atomicfile.WriteJSON(path, ck)
}

// removeIfExists deletes path, treating "already gone" as success.
func removeIfExists(path string) error {
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// searchCursor is the live, in-memory form of the resumable search state.
type searchCursor struct {
	phase     string
	sigmaLo   float64
	sigmaHi   float64
	doublings int
	best      genObfOutcome
	bestSigma float64
	steps     []CheckpointStep
}

func newSearchCursor(p Params) *searchCursor {
	return &searchCursor{
		phase:   phaseExponential,
		sigmaLo: 0,
		sigmaHi: 4 * p.SigmaTolerance,
		best:    genObfOutcome{epsilon: 1},
	}
}

// restoreCursor rebuilds the cursor (and the searchState's RNG position
// and the Result's call totals) from a validated checkpoint.
func restoreCursor(ck *Checkpoint, st *searchState, res *Result) (*searchCursor, error) {
	cur := &searchCursor{
		phase:     ck.Phase,
		sigmaLo:   ck.SigmaLo,
		sigmaHi:   ck.SigmaHi,
		doublings: ck.Doublings,
		best:      genObfOutcome{epsilon: 1},
		bestSigma: ck.BestSigma,
		steps:     append([]CheckpointStep(nil), ck.Steps...),
	}
	if len(ck.BestGraph) > 0 {
		g, err := uncertain.ReadBinary(bytes.NewReader(ck.BestGraph))
		if err != nil {
			return nil, fmt.Errorf("core: decoding checkpointed best graph: %w", err)
		}
		cur.best = genObfOutcome{epsilon: ck.BestEpsilon, graph: g}
	}
	st.seq = ck.Seq
	res.GenObfCalls = ck.GenObfCalls
	res.Attempts = ck.AttemptCount
	return cur, nil
}

// checkpoint materializes the cursor into its on-disk form.
func (st *searchState) checkpoint(cur *searchCursor, res *Result) (*Checkpoint, error) {
	p := st.p
	ck := &Checkpoint{
		Version:        CheckpointVersion,
		GraphHash:      st.graphHash(),
		K:              p.K,
		Epsilon:        p.Epsilon,
		Variant:        p.Variant.String(),
		SizeMultiplier: p.SizeMultiplier,
		WhiteNoise:     p.WhiteNoise,
		Attempts:       p.Attempts,
		Samples:        p.Samples,
		SamplingMode:   p.SamplingMode.String(),
		TargetRSE:      p.TargetRSE,
		MaxSamples:     p.MaxSamples,
		Seed:           p.Seed,
		SigmaTolerance: p.SigmaTolerance,
		MaxDoublings:   p.MaxDoublings,
		Phase:          cur.phase,
		SigmaLo:        cur.sigmaLo,
		SigmaHi:        cur.sigmaHi,
		Doublings:      cur.doublings,
		Seq:            st.seq,
		GenObfCalls:    res.GenObfCalls,
		AttemptCount:   res.Attempts,
		BestEpsilon:    cur.best.epsilon,
		BestSigma:      cur.bestSigma,
		Steps:          cur.steps,
	}
	if cur.best.graph != nil {
		var buf bytes.Buffer
		if err := uncertain.WriteBinary(&buf, cur.best.graph); err != nil {
			return nil, fmt.Errorf("core: encoding best graph for checkpoint: %w", err)
		}
		ck.BestGraph = buf.Bytes()
	}
	return ck, nil
}

// graphHash caches the input fingerprint: it is pure in the (immutable
// during the search) input graph and the hash feeds every checkpoint.
func (st *searchState) graphHash() uint64 {
	if st.gHash == 0 {
		st.gHash = GraphHash(st.g)
	}
	return st.gHash
}

// writeCheckpoint snapshots the search to Params.CheckpointPath. A no-op
// without a configured path.
func (st *searchState) writeCheckpoint(cur *searchCursor, res *Result) error {
	if st.p.CheckpointPath == "" {
		return nil
	}
	ck, err := st.checkpoint(cur, res)
	if err != nil {
		return err
	}
	if err := ck.WriteFile(st.p.CheckpointPath); err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	st.lastCkpt = res.GenObfCalls
	st.p.Obs.Debug("core: checkpoint written", "path", st.p.CheckpointPath,
		"phase", cur.phase, "genobf_calls", res.GenObfCalls)
	return nil
}

// maybeCheckpoint writes on the CheckpointEvery cadence (counted in GenObf
// calls). Cadence write failures are logged, not fatal: losing a periodic
// snapshot must not kill an otherwise healthy run — the interrupt-time
// write still reports its error to the caller.
func (st *searchState) maybeCheckpoint(cur *searchCursor, res *Result) {
	if st.p.CheckpointPath == "" || st.p.CheckpointEvery <= 0 {
		return
	}
	if res.GenObfCalls-st.lastCkpt < st.p.CheckpointEvery {
		return
	}
	if err := st.writeCheckpoint(cur, res); err != nil {
		st.p.Obs.Log("core: periodic checkpoint failed", "error", err.Error())
	}
}
