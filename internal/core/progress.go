package core

import (
	"math"

	"chameleon/internal/obs"
)

// publishProgress derives run.progress / run.eta_seconds gauges from the
// σ-search cursor after every GenObf call, so the expose server's /runs
// and /metrics views can report how far along an in-flight anonymization
// is. It only reads the cursor and the metrics registry — never the RNG
// streams — so it cannot perturb the bit-identical resume guarantee.
//
// Work is measured in GenObf calls. The calls already made are known
// exactly (Result.GenObfCalls, checkpoint-restored on resume); the calls
// remaining are the bisection steps needed to shrink the current bracket
// below SigmaTolerance, plus one pending feasibility probe while the
// exponential phase is still bracketing. The ETA multiplies that remainder
// by the mean GenObf cost observed so far (the core.genobf_seconds
// histogram genObf maintains). Both are estimates — the exponential phase
// can widen the bracket again — which is exactly what a progress bar is.
func (st *searchState) publishProgress(cur *searchCursor, res *Result) {
	reg := st.p.Obs.Registry()
	if reg == nil {
		return
	}
	remaining := bisectionSteps(cur.sigmaHi-cur.sigmaLo, st.p.SigmaTolerance)
	if cur.phase == phaseExponential {
		// The bracket is not established yet: at least one more probe at
		// sigmaHi, then the bisection over whatever bracket it confirms.
		remaining++
	}
	done := float64(res.GenObfCalls)
	frac := done / (done + float64(remaining))
	base, span, owned := st.progressWindow()
	reg.Gauge(obs.ProgressGauge).Set(base + frac*span)

	if owned {
		h := reg.Histogram("core.genobf_seconds", obs.TimeBuckets)
		var eta float64
		if n := h.Count(); n > 0 {
			eta = h.Sum() / float64(n) * float64(remaining)
		}
		reg.Gauge(obs.ETAGauge).Set(eta)
	}
}

// publishDone pins the progress gauges to their terminal values when the
// search completes.
func (st *searchState) publishDone() {
	reg := st.p.Obs.Registry()
	if reg == nil {
		return
	}
	base, span, owned := st.progressWindow()
	reg.Gauge(obs.ProgressGauge).Set(base + span)
	if owned {
		reg.Gauge(obs.ETAGauge).Set(0)
	}
}

// progressWindow resolves the Params progress mapping: a zero-valued pair
// means this search owns the whole bar (and the ETA gauge with it).
func (st *searchState) progressWindow() (base, span float64, owned bool) {
	base, span = st.p.ProgressBase, st.p.ProgressSpan
	if base == 0 && span == 0 {
		return 0, 1, true
	}
	return base, span, false
}

// bisectionSteps returns how many halvings shrink a bracket of the given
// width below tol: ceil(log2(width/tol)), 0 when already within tolerance.
func bisectionSteps(width, tol float64) int {
	if width <= tol || tol <= 0 {
		return 0
	}
	return int(math.Ceil(math.Log2(width / tol)))
}
