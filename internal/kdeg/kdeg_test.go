package kdeg

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"chameleon/internal/gen"
	"chameleon/internal/privacy"
	"chameleon/internal/repan"
	"chameleon/internal/uncertain"
)

func TestAnonymizeSequenceBasics(t *testing.T) {
	out, err := AnonymizeSequence([]int{5, 3, 3, 2, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !IsKAnonymousSequence(out, 2) {
		t.Fatalf("output %v not 2-anonymous", out)
	}
	// Degrees only grow.
	in := []int{5, 3, 3, 2, 1, 1}
	for i := range in {
		if out[i] < in[i] {
			t.Fatalf("degree %d shrank: %v -> %v", i, in[i], out[i])
		}
	}
}

func TestAnonymizeSequenceOptimalSmall(t *testing.T) {
	// {4, 2, 2, 1} with k=2: optimal grouping {4,2}->{4,4} cost 2 and
	// {2,1}->{2,2} cost 1, total 3; the alternative single group costs
	// 4*4-9=7.
	out, err := AnonymizeSequence([]int{4, 2, 2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cost := 0
	in := []int{4, 2, 2, 1}
	for i := range in {
		cost += out[i] - in[i]
	}
	if cost != 3 {
		t.Fatalf("DP cost = %d (%v), want optimal 3", cost, out)
	}
}

func TestAnonymizeSequenceErrors(t *testing.T) {
	if _, err := AnonymizeSequence([]int{3, 2}, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := AnonymizeSequence([]int{3, 2}, 5); err == nil {
		t.Fatal("k > n should error")
	}
	if _, err := AnonymizeSequence([]int{1, 2}, 1); err == nil {
		t.Fatal("unsorted input should error")
	}
	out, err := AnonymizeSequence(nil, 1)
	if err != nil || out != nil {
		t.Fatalf("empty input: %v, %v", out, err)
	}
}

func TestAnonymizeSequenceQuickProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 2 + rng.IntN(40)
		k := 1 + rng.IntN(n)
		seq := make([]int, n)
		for i := range seq {
			seq[i] = rng.IntN(20)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(seq)))
		out, err := AnonymizeSequence(seq, k)
		if err != nil {
			return false
		}
		if !IsKAnonymousSequence(out, k) {
			return false
		}
		for i := range seq {
			if out[i] < seq[i] {
				return false
			}
		}
		// Output stays descending (group maxima of a descending input).
		for i := 1; i < n; i++ {
			if out[i] > out[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIsKAnonymousSequence(t *testing.T) {
	if !IsKAnonymousSequence([]int{3, 3, 1, 1}, 2) {
		t.Fatal("sequence is 2-anonymous")
	}
	if IsKAnonymousSequence([]int{3, 3, 1}, 2) {
		t.Fatal("lone 1 breaks 2-anonymity")
	}
	if !IsKAnonymousSequence(nil, 5) {
		t.Fatal("empty sequence is vacuously anonymous")
	}
}

func deterministicGraph(t *testing.T, seed uint64, n, mPer int) *uncertain.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, mPer, gen.UniformProbs(1, 1), rand.New(rand.NewPCG(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	// UniformProbs(1,1) yields p=1 edges.
	for i := 0; i < g.NumEdges(); i++ {
		if err := g.SetProb(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAnonymizeGraphIsSupergraph(t *testing.T) {
	g := deterministicGraph(t, 2, 80, 2)
	pub, err := Anonymize(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every original edge survives.
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if !pub.HasEdge(e.U, e.V) {
			t.Fatalf("original edge (%d,%d) dropped", e.U, e.V)
		}
	}
	// The result is k-degree anonymous.
	degs := make([]int, pub.NumNodes())
	for v := range degs {
		degs[v] = pub.Degree(uncertain.NodeID(v))
	}
	if !IsKAnonymousSequence(degs, 4) {
		t.Fatalf("published degrees not 4-anonymous: %v", degs)
	}
}

// TestKDegreeImpliesObfuscation ties the two privacy models together: a
// k-degree-anonymous deterministic graph is (k, 0)-obfuscated under the
// paper's entropy criterion, because every degree posterior is uniform
// over at least k vertices.
func TestKDegreeImpliesObfuscation(t *testing.T) {
	g := deterministicGraph(t, 3, 60, 2)
	const k = 3
	pub, err := Anonymize(g, k)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := privacy.CheckObfuscation(pub, privacy.DegreeProperty(pub), k)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NonObfuscated != 0 {
		t.Fatalf("k-degree anonymity should imply (k,0)-obf, %d vertices failed", rep.NonObfuscated)
	}
}

func TestAnonymizeRejectsUncertainInput(t *testing.T) {
	g := uncertain.New(3)
	g.MustAddEdge(0, 1, 0.5)
	if _, err := Anonymize(g, 2); err == nil {
		t.Fatal("uncertain input should be rejected")
	}
}

func TestAnonymizeValidatesK(t *testing.T) {
	g := deterministicGraph(t, 4, 20, 2)
	if _, err := Anonymize(g, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Anonymize(g, 99); err == nil {
		t.Fatal("k > n should error")
	}
}

func TestAnonymizeAfterExtraction(t *testing.T) {
	// The full conventional pipeline on an uncertain graph: extract the
	// representative, then k-degree anonymize it.
	g, err := gen.BarabasiAlbert(100, 2, gen.UniformProbs(0.3, 0.9), rand.New(rand.NewPCG(5, 1)))
	if err != nil {
		t.Fatal(err)
	}
	rep := repan.Representative(g)
	pub, err := Anonymize(rep, 3)
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]int, pub.NumNodes())
	for v := range degs {
		degs[v] = pub.Degree(uncertain.NodeID(v))
	}
	if !IsKAnonymousSequence(degs, 3) {
		t.Fatal("pipeline output not 3-degree anonymous")
	}
}

func BenchmarkAnonymizeSequence(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	seq := make([]int, 2000)
	for i := range seq {
		seq[i] = rng.IntN(100)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnonymizeSequence(seq, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKDegreeAnonymize(b *testing.B) {
	g, err := gen.BarabasiAlbert(300, 3, gen.UniformProbs(1, 1), rand.New(rand.NewPCG(2, 1)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < g.NumEdges(); i++ {
		if err := g.SetProb(i, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Anonymize(g, 5); err != nil {
			b.Fatal(err)
		}
	}
}
