// Package kdeg implements k-degree anonymity (Liu & Terzi, SIGMOD 2008 —
// reference [24] of the paper, the canonical edge-modification
// anonymizer): make every degree value shared by at least k vertices by
// adding a minimal amount of degree, then realize the new sequence as a
// supergraph of the input.
//
// It exists as a second conventional baseline: on a deterministic graph a
// k-anonymous degree sequence implies (k, 0)-obfuscation under the
// paper's entropy criterion (every posterior Y_w is uniform over >= k
// vertices), but the pipeline is as uncertainty-oblivious as Rep-An —
// probabilities must be detached first, with the reliability cost the
// paper documents.
package kdeg

import (
	"fmt"
	"sort"

	"chameleon/internal/uncertain"
)

// AnonymizeSequence returns the cheapest k-anonymous degree sequence that
// dominates the input (every degree only ever increases), using the
// Liu–Terzi dynamic program over the descending-sorted sequence: each
// group of consecutive vertices is raised to the group's maximum, and
// groups have size >= k.
//
// The result is indexed like the (sorted) input; callers keep the
// permutation. Cost is O(n·k) states with O(k) transition window.
func AnonymizeSequence(sorted []int, k int) ([]int, error) {
	n := len(sorted)
	if k < 1 {
		return nil, fmt.Errorf("kdeg: k must be >= 1, got %d", k)
	}
	if n == 0 {
		return nil, nil
	}
	if k > n {
		return nil, fmt.Errorf("kdeg: k=%d exceeds sequence length %d", k, n)
	}
	for i := 1; i < n; i++ {
		if sorted[i] > sorted[i-1] {
			return nil, fmt.Errorf("kdeg: sequence must be sorted descending")
		}
	}

	// prefix[i] = sum of the first i degrees.
	prefix := make([]int, n+1)
	for i, d := range sorted {
		prefix[i+1] = prefix[i] + d
	}
	// groupCost(i, j) = cost of raising d[i..j] (inclusive) to d[i].
	groupCost := func(i, j int) int {
		return sorted[i]*(j-i+1) - (prefix[j+1] - prefix[i])
	}

	const inf = int(^uint(0) >> 1)
	// dp[j] = min cost to anonymize the first j vertices (prefix d[0..j-1]).
	dp := make([]int, n+1)
	cut := make([]int, n+1) // start index of the last group
	for j := 1; j <= n; j++ {
		dp[j] = inf
		if j < k {
			continue
		}
		// The last group covers [i, j-1] with size in [k, 2k-1] (groups of
		// 2k or more always split no worse).
		lo := j - 2*k + 1
		if lo < 0 {
			lo = 0
		}
		for i := lo; i <= j-k; i++ {
			if i != 0 && dp[i] == inf {
				continue
			}
			var c int
			if i == 0 {
				c = groupCost(0, j-1)
			} else {
				c = dp[i] + groupCost(i, j-1)
			}
			if c < dp[j] {
				dp[j] = c
				cut[j] = i
			}
		}
	}
	if dp[n] == inf {
		return nil, fmt.Errorf("kdeg: no k-anonymous grouping exists (unreachable for k <= n)")
	}

	out := make([]int, n)
	for j := n; j > 0; {
		i := cut[j]
		for l := i; l < j; l++ {
			out[l] = sorted[i]
		}
		j = i
	}
	return out, nil
}

// IsKAnonymousSequence reports whether every value in the sequence occurs
// at least k times.
func IsKAnonymousSequence(degrees []int, k int) bool {
	counts := map[int]int{}
	for _, d := range degrees {
		counts[d]++
	}
	for _, c := range counts {
		if c < k {
			return false
		}
	}
	return true
}

// Anonymize makes the deterministic graph g k-degree anonymous by adding
// edges (the supergraph approach of [24]): compute the Liu–Terzi target
// sequence, then greedily wire the residual degree demands between
// non-adjacent vertex pairs, preferring the largest residuals
// (Havel–Hakimi style). If the residuals cannot be fully realized without
// multi-edges, the leftover demand is absorbed by raising the target of
// the affected group — a bounded number of relaxation rounds.
//
// The input must be deterministic (every probability 1); uncertain graphs
// go through the representative-extraction step first, exactly like
// Rep-An.
func Anonymize(g *uncertain.Graph, k int) (*uncertain.Graph, error) {
	n := g.NumNodes()
	if k < 1 || k > n {
		return nil, fmt.Errorf("kdeg: k=%d out of [1, %d]", k, n)
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i).P != 1 {
			return nil, fmt.Errorf("kdeg: input must be deterministic; edge %d has p=%v", i, g.Edge(i).P)
		}
	}

	// Sort vertices by degree descending, remembering the permutation.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(uncertain.NodeID(v))
	}
	sort.SliceStable(order, func(a, b int) bool { return deg[order[a]] > deg[order[b]] })
	sorted := make([]int, n)
	for i, v := range order {
		sorted[i] = deg[v]
	}

	target, err := AnonymizeSequence(sorted, k)
	if err != nil {
		return nil, err
	}

	pub := g.Clone()
	residual := make([]int, n) // per original vertex id
	for i, v := range order {
		residual[v] = target[i] - deg[v]
	}

	// Greedy realization: repeatedly connect the vertex with the largest
	// residual to the next-largest compatible vertices.
	for round := 0; round < n; round++ {
		// Pick the vertex with the largest remaining demand.
		top := -1
		for v := 0; v < n; v++ {
			if residual[v] > 0 && (top < 0 || residual[v] > residual[top]) {
				top = v
			}
		}
		if top < 0 {
			break // fully realized
		}
		// Partners: positive-residual non-neighbors first, largest demand
		// first; then zero-residual non-neighbors (their degree bump is
		// repaired below by re-anonymizing, but prefer not to need it).
		partners := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if v != top && residual[v] > 0 && !pub.HasEdge(uncertain.NodeID(top), uncertain.NodeID(v)) {
				partners = append(partners, v)
			}
		}
		sort.SliceStable(partners, func(a, b int) bool { return residual[partners[a]] > residual[partners[b]] })
		if len(partners) == 0 {
			// No compatible partner with demand: absorb the leftover by
			// giving up one unit (round the group down is not allowed —
			// degrees only grow — so pair with any non-neighbor and let
			// the partner's group absorb the +1).
			for v := 0; v < n; v++ {
				if v != top && !pub.HasEdge(uncertain.NodeID(top), uncertain.NodeID(v)) {
					partners = append(partners, v)
					break
				}
			}
			if len(partners) == 0 {
				return nil, fmt.Errorf("kdeg: vertex %d saturated; cannot realize the sequence", top)
			}
		}
		for _, v := range partners {
			if residual[top] == 0 {
				break
			}
			if err := pub.AddEdge(uncertain.NodeID(top), uncertain.NodeID(v), 1); err != nil {
				return nil, err
			}
			residual[top]--
			residual[v]-- // may go negative for forced partners
		}
	}

	// The forced pairings above may have broken exact k-anonymity; verify
	// and repair by one recursive pass if needed (terminates: degrees only
	// grow toward the complete graph).
	finalDeg := make([]int, n)
	for v := 0; v < n; v++ {
		finalDeg[v] = pub.Degree(uncertain.NodeID(v))
	}
	if !IsKAnonymousSequence(finalDeg, k) {
		return Anonymize(pub, k)
	}
	return pub, nil
}
