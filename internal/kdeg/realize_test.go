package kdeg

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"chameleon/internal/uncertain"
)

func TestGraphicalBasics(t *testing.T) {
	cases := []struct {
		seq  []int
		want bool
	}{
		{[]int{}, true},
		{[]int{0}, true},
		{[]int{1}, false},             // odd total
		{[]int{1, 1}, true},           // single edge
		{[]int{2, 2, 2}, true},        // triangle
		{[]int{3, 3, 3, 3}, true},     // K4
		{[]int{3, 1, 1, 1}, true},     // star
		{[]int{4, 1, 1, 1}, false},    // degree exceeds n-1
		{[]int{3, 3, 1, 1}, false},    // EG violation at k=2: two hubs need degree-2 partners
		{[]int{-1, 1}, false},         // negative
		{[]int{2, 2, 1, 1}, true},     // path
		{[]int{3, 3, 3, 1, 1}, false}, // odd total (11)
		{[]int{4, 4, 4, 2, 2}, false}, // EG violation: three full hubs force degree >= 3 everywhere
		{[]int{4, 4, 2, 2, 2}, true},  // realizable on 5 vertices
		{[]int{4, 4, 4, 4, 2}, false}, // odd sum
	}
	for _, c := range cases {
		if got := Graphical(c.seq); got != c.want {
			t.Errorf("Graphical(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestRealizeProducesExactDegrees(t *testing.T) {
	seqs := [][]int{
		{2, 2, 2},
		{3, 1, 1, 1},
		{3, 3, 2, 2, 2, 2, 1, 1},
		{5, 5, 4, 3, 3, 2, 2, 2},
	}
	for _, seq := range seqs {
		if !Graphical(seq) {
			t.Fatalf("test sequence %v should be graphical", seq)
		}
		g, err := Realize(seq)
		if err != nil {
			t.Fatalf("Realize(%v): %v", seq, err)
		}
		for v, want := range seq {
			if got := g.Degree(uncertain.NodeID(v)); got != want {
				t.Fatalf("Realize(%v): vertex %d degree %d, want %d", seq, v, got, want)
			}
		}
	}
}

func TestRealizeRejectsNonGraphical(t *testing.T) {
	if _, err := Realize([]int{1}); err == nil {
		t.Fatal("odd sum should be rejected")
	}
	if _, err := Realize([]int{4, 1, 1, 1}); err == nil {
		t.Fatal("over-demand should be rejected")
	}
}

func TestGraphicalQuickAgainstRealize(t *testing.T) {
	// Whenever Graphical says yes, Realize must succeed with the exact
	// degrees; graph degree sequences are always graphical.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 2 + rng.IntN(20)
		// Draw a real graph; its sequence must be graphical and realizable.
		g := uncertain.New(n)
		for i := 0; i < 2*n; i++ {
			u := uncertain.NodeID(rng.IntN(n))
			v := uncertain.NodeID(rng.IntN(n))
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, 1)
		}
		seq := make([]int, n)
		for v := 0; v < n; v++ {
			seq[v] = g.Degree(uncertain.NodeID(v))
		}
		if !Graphical(seq) {
			return false
		}
		h, err := Realize(seq)
		if err != nil {
			return false
		}
		for v, want := range seq {
			if h.Degree(uncertain.NodeID(v)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymizedSequencesStayGraphicalOften(t *testing.T) {
	// The Liu-Terzi target sequence is not always graphical (the original
	// paper handles this with relaxation); verify Graphical composes with
	// AnonymizeSequence without crashing and flags the bad ones.
	rng := rand.New(rand.NewPCG(9, 9))
	graphical := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		g := deterministicGraphT(rng, 40)
		seq := make([]int, 40)
		for v := 0; v < 40; v++ {
			seq[v] = g.Degree(uncertain.NodeID(v))
		}
		// Descending sort.
		for a := 0; a < len(seq); a++ {
			for b := a + 1; b < len(seq); b++ {
				if seq[b] > seq[a] {
					seq[a], seq[b] = seq[b], seq[a]
				}
			}
		}
		anon, err := AnonymizeSequence(seq, 3)
		if err != nil {
			t.Fatal(err)
		}
		if Graphical(anon) {
			graphical++
		}
	}
	if graphical == 0 {
		t.Fatal("no anonymized sequence was graphical across 30 trials; suspicious")
	}
}

func deterministicGraphT(rng *rand.Rand, n int) *uncertain.Graph {
	g := uncertain.New(n)
	for i := 0; i < 2*n; i++ {
		u := uncertain.NodeID(rng.IntN(n))
		v := uncertain.NodeID(rng.IntN(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 1)
	}
	return g
}
