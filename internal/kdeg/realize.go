package kdeg

import (
	"fmt"
	"sort"

	"chameleon/internal/uncertain"
)

// Graphical reports whether the degree sequence can be realized by some
// simple graph, via the Erdős–Gallai characterization: for each prefix k
// of the descending-sorted sequence,
//
//	sum_{i<=k} d_i <= k(k-1) + sum_{i>k} min(d_i, k)
//
// and the total degree must be even.
func Graphical(degrees []int) bool {
	n := len(degrees)
	d := append([]int(nil), degrees...)
	sort.Sort(sort.Reverse(sort.IntSlice(d)))
	total := 0
	for _, x := range d {
		if x < 0 || x > n-1 {
			return false
		}
		total += x
	}
	if total%2 != 0 {
		return false
	}
	// Prefix sums for the left side; the right tail is evaluated directly.
	prefix := 0
	for k := 1; k <= n; k++ {
		prefix += d[k-1]
		rhs := k * (k - 1)
		for i := k; i < n; i++ {
			if d[i] < k {
				rhs += d[i]
			} else {
				rhs += k
			}
		}
		if prefix > rhs {
			return false
		}
	}
	return true
}

// Realize constructs a simple deterministic graph with exactly the given
// degree sequence using the Havel–Hakimi algorithm, or errors if the
// sequence is not graphical. Vertex i of the result has degree
// degrees[i].
func Realize(degrees []int) (*uncertain.Graph, error) {
	if !Graphical(degrees) {
		return nil, fmt.Errorf("kdeg: sequence is not graphical")
	}
	n := len(degrees)
	g := uncertain.New(n)
	type node struct{ id, rem int }
	nodes := make([]node, n)
	for i, d := range degrees {
		nodes[i] = node{id: i, rem: d}
	}
	for {
		// Take the vertex with the largest remaining demand.
		sort.SliceStable(nodes, func(a, b int) bool { return nodes[a].rem > nodes[b].rem })
		if nodes[0].rem == 0 {
			break
		}
		top := nodes[0]
		if top.rem > n-1 {
			return nil, fmt.Errorf("kdeg: demand %d exceeds n-1", top.rem)
		}
		nodes[0].rem = 0
		// Connect it to the next top.rem vertices.
		connected := 0
		for i := 1; i < len(nodes) && connected < top.rem; i++ {
			if nodes[i].rem == 0 {
				break // sorted: nothing left with demand
			}
			if g.HasEdge(uncertain.NodeID(top.id), uncertain.NodeID(nodes[i].id)) {
				continue
			}
			if err := g.AddEdge(uncertain.NodeID(top.id), uncertain.NodeID(nodes[i].id), 1); err != nil {
				return nil, err
			}
			nodes[i].rem--
			connected++
		}
		if connected < top.rem {
			// Cannot happen for a graphical sequence with Havel-Hakimi,
			// unless duplicate-edge skipping starved us; fail loudly.
			return nil, fmt.Errorf("kdeg: realization stalled at vertex %d (%d of %d placed)",
				top.id, connected, top.rem)
		}
	}
	return g, nil
}
