package testkit

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/uncertain"
)

// TestModeOracle runs the differential oracle for every sampling mode:
// each variance-reduction strategy must reproduce the exact pair
// reliabilities, connected-pair counts and Delta-discrepancy within the
// independent-worlds tolerances, and its adaptive-capped arm must equal
// its fixed-N run bit-for-bit. Covers SampleIndependent too, so the mode
// dispatch itself is exercised end to end.
func TestModeOracle(t *testing.T) {
	const (
		samples = 4000
		seed    = 0x5eedc0de
	)
	modes := []uncertain.SamplingMode{
		uncertain.SampleIndependent,
		uncertain.SampleAntithetic,
		uncertain.SampleStratified,
		uncertain.SampleCoupled,
	}
	for _, cg := range Corpus() {
		for _, mode := range modes {
			cg, mode := cg, mode
			t.Run(cg.Name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				for _, err := range ModeOracle(cg, samples, seed, mode) {
					t.Error(err)
				}
			})
		}
	}
}

// modeStream mirrors the per-sample PCG stream derivation of the
// reliability estimator, so these tests draw exactly the worlds the
// production chunk loop would for sample index i (antithetic pairs share
// the stream of their pair index i>>1).
func modeStream(i int) uint64 {
	return uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
}

// sampleModeCounts draws gofSamples worlds with the given mode exactly as
// the estimator schedules them and returns per-edge presence counts.
// parity 0/1 restricts the count to even (plain) or odd (mirrored)
// antithetic indices — within one parity class the worlds are iid, which
// the chi-square marginal test below needs; parity -1 counts all worlds.
func sampleModeCounts(g *uncertain.Graph, mode uncertain.SamplingMode, geometric bool, parity int, seed uint64) ([]int, int) {
	s := g.Sampler()
	pcg := rand.NewPCG(0, 0)
	counts := make([]int, g.NumEdges())
	var w uncertain.World
	n := 0
	for i := 0; i < gofSamples; i++ {
		if parity >= 0 && i&1 != parity {
			continue
		}
		switch mode {
		case uncertain.SampleAntithetic:
			pcg.Seed(seed, modeStream(i>>1))
			if geometric {
				s.SampleIntoGeometricAntithetic(&w, pcg, i&1 == 1)
			} else {
				s.SampleIntoAntithetic(&w, pcg, i&1 == 1)
			}
		case uncertain.SampleStratified:
			s.SampleIntoStratified(&w, seed, i)
		case uncertain.SampleCoupled:
			s.SampleIntoCoupled(&w, seed, i)
		default:
			pcg.Seed(seed, modeStream(i))
			if geometric {
				s.SampleIntoGeometric(&w, pcg)
			} else {
				s.SampleInto(&w, pcg)
			}
		}
		n++
		for j := range counts {
			if w.Present(j) {
				counts[j]++
			}
		}
	}
	return counts, n
}

// TestSamplerModeMarginals extends the marginal GOF coverage to the
// variance-reduction modes on every sampling-corpus graph: the mirrored
// half of the antithetic stream (threshold AND geometric-skip kernels),
// the stratified lattice and the coupled hash must all produce the right
// per-edge Bernoulli marginals. Pinned edges stay deterministic, rare
// edges stay under their Chernoff caps, and the well-populated edges pass
// a pooled chi-square. For the lattice the per-edge counts are
// under-dispersed by construction (that is the point of stratification),
// which only pushes the upper-tail statistic toward acceptance — a
// marginal bias would still shift the counts by Theta(n) and reject.
func TestSamplerModeMarginals(t *testing.T) {
	variants := []struct {
		name      string
		mode      uncertain.SamplingMode
		geometric bool
		parity    int
	}{
		{"antithetic-plain", uncertain.SampleAntithetic, false, 0},
		{"antithetic-mirrored", uncertain.SampleAntithetic, false, 1},
		{"antithetic-geom-plain", uncertain.SampleAntithetic, true, 0},
		{"antithetic-geom-mirrored", uncertain.SampleAntithetic, true, 1},
		{"stratified", uncertain.SampleStratified, false, -1},
		{"coupled", uncertain.SampleCoupled, false, -1},
	}
	for _, cg := range SamplingCorpus() {
		for _, vr := range variants {
			cg, vr := cg, vr
			t.Run(cg.Name+"/"+vr.name, func(t *testing.T) {
				t.Parallel()
				g := cg.G
				counts, n := sampleModeCounts(g, vr.mode, vr.geometric, vr.parity, gofSeeds[0])
				chiEdges := 0
				for j, c := range counts {
					p := g.Edge(j).P
					switch {
					case p <= 0:
						if c != 0 {
							t.Errorf("edge %d has p=0 but appeared %d times", j, c)
						}
					case p >= 1:
						if c != n {
							t.Errorf("edge %d has p=1 but appeared only %d/%d times", j, c, n)
						}
					case float64(n)*math.Min(p, 1-p) < 25:
						rare, rareP := c, p
						if p > 0.5 {
							rare, rareP = n-c, 1-p
						}
						if maxC := RareCountMax(rareP, n); rare > maxC {
							t.Errorf("edge %d (p=%v): rare-side count %d exceeds Chernoff cap %d",
								j, p, rare, maxC)
						}
					default:
						chiEdges++
					}
				}
				if chiEdges == 0 {
					return
				}
				err := RetryGOF(fmt.Sprintf("marginals %s/%s", cg.Name, vr.name), func(seed uint64) float64 {
					cs, m := sampleModeCounts(g, vr.mode, vr.geometric, vr.parity, seed)
					var stat float64
					for j, c := range cs {
						p := g.Edge(j).P
						if p <= 0 || p >= 1 || float64(m)*math.Min(p, 1-p) < 25 {
							continue
						}
						z := (float64(c) - float64(m)*p) / math.Sqrt(float64(m)*p*(1-p))
						stat += z * z
					}
					return ChiSquareTail(stat, chiEdges)
				})
				if err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestAntitheticPairComplement pins the defining identity of antithetic
// threshold sampling at p = 0.5: the mirrored world of a pair is the
// exact edge-complement of its plain sibling, so the pair's presence
// counts sum to the pair count for every interior p=0.5 edge.
func TestAntitheticPairComplement(t *testing.T) {
	g := uncertain.New(4)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	g.MustAddEdge(2, 3, 0.5)
	plain, np := sampleModeCounts(g, uncertain.SampleAntithetic, false, 0, gofSeeds[0])
	mirror, nm := sampleModeCounts(g, uncertain.SampleAntithetic, false, 1, gofSeeds[0])
	if np != nm {
		t.Fatalf("halves differ in size: %d vs %d", np, nm)
	}
	for j := range plain {
		if plain[j]+mirror[j] != np {
			t.Errorf("edge %d: plain %d + mirrored %d != pairs %d (p=0.5 complement broken)",
				j, plain[j], mirror[j], np)
		}
	}
}
