package testkit

import (
	"math/rand/v2"

	"chameleon/internal/uncertain"
)

// NaiveEstimator is a deliberately simple Monte Carlo reliability
// estimator that shares no code with the production engine: worlds are
// drawn with one rand.Float64 comparison per edge, connectivity is
// labeled by breadth-first search over freshly built adjacency lists, and
// nothing is pooled, packed or cached. It is slow on purpose — its only
// job is to disagree with internal/reliability if either implementation
// is wrong, which a shared kernel could never do.
//
// The estimator draws from its own PCG stream (seeded per sample index),
// so its estimates are statistically independent of the bitset engine's:
// the differential oracle compares both against exact values, not against
// each other's sampling noise.
type NaiveEstimator struct {
	// Samples is the number of worlds drawn (N); must be positive.
	Samples int
	// Seed fixes the world stream.
	Seed uint64
}

// sampleMask draws one possible world as a per-edge presence mask.
func (e NaiveEstimator) sampleMask(g *uncertain.Graph, i int, mask []bool) []bool {
	rng := rand.New(rand.NewPCG(e.Seed^0xa5a5a5a5a5a5a5a5, uint64(i)+1))
	mask = mask[:0]
	for j := 0; j < g.NumEdges(); j++ {
		mask = append(mask, rng.Float64() < g.Edge(j).P)
	}
	return mask
}

// labels breadth-first-searches the masked world and returns a component
// label per vertex (the smallest vertex id in the component).
func labels(g *uncertain.Graph, mask []bool, adj [][]int32, lab []int32) []int32 {
	n := g.NumNodes()
	for v := range adj {
		adj[v] = adj[v][:0]
	}
	for j, present := range mask {
		if present {
			e := g.Edge(j)
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	lab = lab[:0]
	for v := 0; v < n; v++ {
		lab = append(lab, -1)
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if lab[v] >= 0 {
			continue
		}
		root := int32(v)
		lab[v] = root
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				if lab[w] < 0 {
					lab[w] = root
					queue = append(queue, w)
				}
			}
		}
	}
	return lab
}

// sampleLabels draws N worlds and labels each one; rows[i][v] is vertex
// v's component label in world i.
func (e NaiveEstimator) sampleLabels(g *uncertain.Graph) [][]int32 {
	n := g.NumNodes()
	rows := make([][]int32, e.Samples)
	adj := make([][]int32, n)
	var mask []bool
	for i := 0; i < e.Samples; i++ {
		mask = e.sampleMask(g, i, mask)
		rows[i] = labels(g, mask, adj, nil)
	}
	return rows
}

// PairReliability estimates R_{u,v}(g) (Definition 1).
func (e NaiveEstimator) PairReliability(g *uncertain.Graph, u, v uncertain.NodeID) float64 {
	hits := 0
	adj := make([][]int32, g.NumNodes())
	var mask []bool
	var lab []int32
	for i := 0; i < e.Samples; i++ {
		mask = e.sampleMask(g, i, mask)
		lab = labels(g, mask, adj, lab)
		if lab[u] == lab[v] {
			hits++
		}
	}
	return float64(hits) / float64(e.Samples)
}

// ExpectedConnectedPairs estimates E[cc(g)]: the expected number of
// connected unordered vertex pairs.
func (e NaiveEstimator) ExpectedConnectedPairs(g *uncertain.Graph) float64 {
	var total float64
	adj := make([][]int32, g.NumNodes())
	var mask []bool
	var lab []int32
	for i := 0; i < e.Samples; i++ {
		mask = e.sampleMask(g, i, mask)
		lab = labels(g, mask, adj, lab)
		total += float64(connectedPairs(lab))
	}
	return total / float64(e.Samples)
}

// connectedPairs counts connected unordered pairs from a label vector.
func connectedPairs(lab []int32) int64 {
	sizes := map[int32]int64{}
	for _, l := range lab {
		sizes[l]++
	}
	var cc int64
	for _, s := range sizes {
		cc += s * (s - 1) / 2
	}
	return cc
}

// Discrepancy estimates the reliability discrepancy Delta (Definition 2)
// over all vertex pairs, with g and h sampled independently.
func (e NaiveEstimator) Discrepancy(g, h *uncertain.Graph) float64 {
	lg := e.sampleLabels(g)
	lh := e.sampleLabels(h)
	n := g.NumNodes()
	inv := 1 / float64(e.Samples)
	var delta float64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			var cg, ch int
			for i := 0; i < e.Samples; i++ {
				if lg[i][u] == lg[i][v] {
					cg++
				}
				if lh[i][u] == lh[i][v] {
					ch++
				}
			}
			d := float64(cg-ch) * inv
			if d < 0 {
				d = -d
			}
			delta += d
		}
	}
	return delta
}

// EdgeRelevance estimates ERR^e for every edge by per-world forcing: in
// each sampled world the edge is toggled present and absent and the
// connected-pair difference averaged. This is an unbiased coupling
// estimator for E[cc | e present] - E[cc | e absent]; its per-world
// values lie in [0, n-1]^2 but in practice have far lower variance than
// the grouped estimator, since both terms share the rest of the world.
func (e NaiveEstimator) EdgeRelevance(g *uncertain.Graph) []float64 {
	m := g.NumEdges()
	out := make([]float64, m)
	adj := make([][]int32, g.NumNodes())
	var mask []bool
	var lab []int32
	for i := 0; i < e.Samples; i++ {
		mask = e.sampleMask(g, i, mask)
		for j := 0; j < m; j++ {
			orig := mask[j]
			mask[j] = true
			lab = labels(g, mask, adj, lab)
			ccE := connectedPairs(lab)
			mask[j] = false
			lab = labels(g, mask, adj, lab)
			ccNE := connectedPairs(lab)
			mask[j] = orig
			out[j] += float64(ccE - ccNE)
		}
	}
	for j := range out {
		out[j] /= float64(e.Samples)
	}
	return out
}
