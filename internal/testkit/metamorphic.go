package testkit

import (
	"fmt"

	"chameleon/internal/exact"
	"chameleon/internal/reliability"
	"chameleon/internal/truncnorm"
	"chameleon/internal/uncertain"
)

// CheckAll runs the metamorphic invariance pass over the corpus:
// properties that must hold for ANY correct implementation, whatever the
// inputs, and that therefore catch whole classes of bugs no point oracle
// can:
//
//   - vertex-relabel invariance — renaming vertices (edge order kept)
//     must leave every committed estimate bit-identical, since the world
//     stream depends only on edge order and connectivity statistics are
//     label-free;
//   - Delta monotonicity in sigma — pushing every probability toward 1/2
//     by the expected ME-style noise magnitude E[R(sigma)] (a shift of
//     (1-2p)*E[R(sigma)]) moves the graph strictly farther in exact
//     discrepancy as sigma grows, and the estimator must preserve that
//     ordering as well as track each exact value;
//   - seed and worker-count independence — the committed estimate is a
//     pure function of (graph, samples, seed): changing Workers must not
//     change a single bit, and changing the seed must stay within the
//     exact-variance tolerance.
//
// It returns one error per violated invariant; empty means the pass held.
func CheckAll(samples int, seed uint64) []error {
	var errs []error
	for _, cg := range Corpus() {
		errs = append(errs, checkRelabelInvariance(cg, samples, seed)...)
		errs = append(errs, checkWorkerSeedIndependence(cg, samples, seed)...)
	}
	errs = append(errs, checkSigmaMonotonicity(samples, seed)...)
	return errs
}

// Relabel returns g with vertex v renamed to perm[v], edges added in the
// original order so the sampling stream is unchanged.
func Relabel(g *uncertain.Graph, perm []uncertain.NodeID) *uncertain.Graph {
	h := uncertain.New(g.NumNodes())
	for _, e := range g.Edges() {
		h.MustAddEdge(perm[e.U], perm[e.V], e.P)
	}
	return h
}

// reversePerm maps v -> n-1-v: a fixed, structure-free relabeling.
func reversePerm(n int) []uncertain.NodeID {
	perm := make([]uncertain.NodeID, n)
	for v := range perm {
		perm[v] = uncertain.NodeID(n - 1 - v)
	}
	return perm
}

func checkRelabelInvariance(cg CorpusGraph, samples int, seed uint64) []error {
	var errs []error
	g := cg.G
	perm := reversePerm(g.NumNodes())
	rg := Relabel(g, perm)
	est := reliability.Estimator{Samples: samples, Seed: seed}

	if a, b := est.ExpectedConnectedPairs(g), est.ExpectedConnectedPairs(rg); a != b {
		errs = append(errs, fmt.Errorf("%s: relabel changed E[cc]: %v vs %v", cg.Name, a, b))
	}
	u, v := uncertain.NodeID(0), uncertain.NodeID(g.NumNodes()-1)
	if a, b := est.PairReliability(g, u, v), est.PairReliability(rg, perm[u], perm[v]); a != b {
		errs = append(errs, fmt.Errorf("%s: relabel changed R(%d,%d): %v vs %v", cg.Name, u, v, a, b))
	}
	ga, gb := est.EdgeRelevance(g), est.EdgeRelevance(rg)
	for i := range ga {
		if ga[i] != gb[i] {
			errs = append(errs, fmt.Errorf("%s: relabel changed ERR[%d]: %v vs %v", cg.Name, i, ga[i], gb[i]))
		}
	}
	h := PerturbedSibling(g)
	rh := Relabel(h, perm)
	// Delta sums per-pair terms in pair order, which a relabeling
	// permutes; the estimates are the same multiset of terms, so only
	// summation-order float noise may differ.
	da, errA := est.Discrepancy(g, h)
	db, errB := est.Discrepancy(rg, rh)
	if errA != nil || errB != nil {
		errs = append(errs, fmt.Errorf("%s: discrepancy errors: %v / %v", cg.Name, errA, errB))
	} else if err := CheckClose(cg.Name+": relabeled Delta", db, da, 1e-9); err != nil {
		errs = append(errs, err)
	}
	return errs
}

func checkWorkerSeedIndependence(cg CorpusGraph, samples int, seed uint64) []error {
	var errs []error
	g := cg.G
	mo, err := ExactMoments(g)
	if err != nil {
		return []error{fmt.Errorf("%s: exact moments: %w", cg.Name, err)}
	}
	serial := reliability.Estimator{Samples: samples, Seed: seed, Workers: 1}
	wide := reliability.Estimator{Samples: samples, Seed: seed, Workers: 4}
	if a, b := serial.ExpectedConnectedPairs(g), wide.ExpectedConnectedPairs(g); a != b {
		errs = append(errs, fmt.Errorf("%s: worker count changed E[cc]: %v (1 worker) vs %v (4)", cg.Name, a, b))
	}
	ra, rb := serial.EdgeRelevance(g), wide.EdgeRelevance(g)
	for i := range ra {
		if ra[i] != rb[i] {
			errs = append(errs, fmt.Errorf("%s: worker count changed ERR[%d]: %v vs %v", cg.Name, i, ra[i], rb[i]))
		}
	}
	// A different seed is a different (valid) estimate: both must sit
	// within the exact-variance tolerance of the truth.
	other := reliability.Estimator{Samples: samples, Seed: seed + 0x9e37}
	tol := MeanTol(mo.CCVar, samples)
	for _, e := range []struct {
		name string
		est  reliability.Estimator
	}{{"seed A", serial}, {"seed B", other}} {
		if err := CheckClose(cg.Name+" E[cc] "+e.name, e.est.ExpectedConnectedPairs(g), mo.CCMean, tol); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// checkSigmaMonotonicity builds ME-style deterministic perturbations of a
// corpus graph at increasing noise levels and checks that (a) the exact
// discrepancy strictly increases with sigma and (b) the estimator tracks
// each exact value within its derived tolerance — so estimated
// discrepancies preserve the sigma ordering whenever the exact gaps
// exceed the combined tolerances (which the chosen sigmas guarantee).
func checkSigmaMonotonicity(samples int, seed uint64) []error {
	var errs []error
	sigmas := []float64{0.05, 0.3, 0.8}
	for _, cg := range Corpus() {
		if !cg.InteriorProbs {
			continue
		}
		g := cg.G
		est := reliability.Estimator{Samples: samples, Seed: seed}
		rg, err := exact.AllPairReliability(g)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", cg.Name, err))
			continue
		}
		prevExact := -1.0
		for _, sigma := range sigmas {
			shift := truncnorm.Mean(sigma)
			h := g.Clone()
			for i := 0; i < h.NumEdges(); i++ {
				p := h.Edge(i).P
				if err := h.SetProb(i, p+(1-2*p)*shift); err != nil {
					errs = append(errs, fmt.Errorf("%s sigma=%v: %w", cg.Name, sigma, err))
				}
			}
			want, err := exact.Discrepancy(g, h)
			if err != nil {
				errs = append(errs, fmt.Errorf("%s sigma=%v: %w", cg.Name, sigma, err))
				continue
			}
			if want <= prevExact {
				errs = append(errs, fmt.Errorf("%s: exact Delta not increasing in sigma: Delta(%v) = %v <= %v",
					cg.Name, sigma, want, prevExact))
			}
			prevExact = want
			rh, err := exact.AllPairReliability(h)
			if err != nil {
				errs = append(errs, fmt.Errorf("%s sigma=%v: %w", cg.Name, sigma, err))
				continue
			}
			got, err := est.Discrepancy(g, h)
			if err != nil {
				errs = append(errs, fmt.Errorf("%s sigma=%v: %w", cg.Name, sigma, err))
				continue
			}
			if err := CheckClose(fmt.Sprintf("%s Delta(sigma=%v)", cg.Name, sigma),
				got, want, DiscrepancyTol(rg, rh, samples)); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errs
}
