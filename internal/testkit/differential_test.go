package testkit

import (
	"testing"

	"chameleon/internal/reliability"
)

// TestDifferentialOracle is the core cross-check of the three reliability
// engines: for every corpus graph, exact enumeration vs the production
// bitset Monte Carlo engine vs the independent naive BFS estimator, on
// pair reliability, connected pairs, Delta-discrepancy and ERR. All
// tolerances are Z standard errors derived from the exact per-world
// moments (see tolerance.go); a failure means an engine is biased, not
// that a seed was unlucky.
func TestDifferentialOracle(t *testing.T) {
	const (
		samples = 4000
		seed    = 0x5eedc0de
	)
	for _, cg := range Corpus() {
		cg := cg
		t.Run(cg.Name, func(t *testing.T) {
			t.Parallel()
			for _, err := range DifferentialOracle(cg, samples, seed) {
				t.Error(err)
			}
		})
	}
}

// TestExactMomentsSelfConsistency validates the oracle itself on graphs
// with hand-computable answers, so a bug in ExactMoments cannot silently
// loosen every differential tolerance.
func TestExactMomentsSelfConsistency(t *testing.T) {
	corpus := Corpus()
	byName := map[string]CorpusGraph{}
	for _, cg := range corpus {
		byName[cg.Name] = cg
	}

	// path4: R(0,1)=0.5, R(0,2)=0.45, R(0,3)=0.135 and
	// E[cc] = sum of pair reliabilities.
	mo, err := ExactMoments(byName["path4"].G)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"R(0,1)", mo.PairR[0][1], 0.5},
		{"R(0,2)", mo.PairR[0][2], 0.5 * 0.9},
		{"R(0,3)", mo.PairR[0][3], 0.5 * 0.9 * 0.3},
		{"R(1,3)", mo.PairR[1][3], 0.9 * 0.3},
		{"E[cc]", mo.CCMean, 0.5 + 0.45 + 0.135 + 0.9 + 0.27 + 0.3},
		// ERR of a path edge: connecting edge 1 joins the {0?,1} side with
		// the {2,3?} side. With e1 forced present vs absent the difference
		// in connected pairs is (1+p0)*(1+p2): 1*1 + 1*p2 + p0*1 + p0*p2.
		{"ERR[1]", mo.ERR[1], (1 + 0.5) * (1 + 0.3)},
	}
	for _, c := range checks {
		if err := CheckClose("path4 "+c.name, c.got, c.want, 1e-12); err != nil {
			t.Error(err)
		}
	}

	// Variance sanity: per-world cc of path4 is bounded by C(4,2)=6, so
	// CCVar <= 9 (half-range squared); and conditional means must bracket
	// the unconditional mean.
	if mo.CCVar <= 0 || mo.CCVar > 9 {
		t.Errorf("path4 CCVar = %v, want in (0, 9]", mo.CCVar)
	}
	for i := 0; i < 3; i++ {
		if mo.CondMean[1][i] < mo.CCMean || mo.CondMean[0][i] > mo.CCMean {
			t.Errorf("path4 edge %d conditional means %v/%v do not bracket %v",
				i, mo.CondMean[0][i], mo.CondMean[1][i], mo.CCMean)
		}
	}

	// certain: pinned edges must produce degenerate marginals.
	mo, err = ExactMoments(byName["certain"].G)
	if err != nil {
		t.Fatal(err)
	}
	if mo.PairR[0][1] != 1 {
		t.Errorf("certain R(0,1) = %v, want 1 (p=1 edge)", mo.PairR[0][1])
	}
	// Vertices 2,3 are joined only by a p=0 edge and a 0.5 edge via 4..0..2.
	if got := mo.PairR[2][3]; got != 0.5 {
		t.Errorf("certain R(2,3) = %v, want 0.5", got)
	}
}

// TestDifferentialOracleCatchesBias proves the oracle has teeth: an
// estimator with a deliberately skewed world stream must be rejected.
func TestDifferentialOracleCatchesBias(t *testing.T) {
	cg := Corpus()[0] // path4
	mo, err := ExactMoments(cg.G)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 4000
	// Bias: shift every probability up by 0.08 before sampling. A correct
	// oracle must flag E[cc] as out of tolerance.
	biased := cg.G.Clone()
	for i := 0; i < biased.NumEdges(); i++ {
		if err := biased.SetProb(i, biased.Edge(i).P+0.08); err != nil {
			t.Fatal(err)
		}
	}
	est := reliability.Estimator{Samples: samples, Seed: 7}
	got := est.ExpectedConnectedPairs(biased)
	if err := CheckClose("biased E[cc]", got, mo.CCMean, MeanTol(mo.CCVar, samples)); err == nil {
		t.Fatalf("oracle failed to reject a +0.08 probability bias (got %v, want %v)",
			got, mo.CCMean)
	}
}

// TestPerturbedSiblingDiffers guards the discrepancy oracle against a
// degenerate sibling (Delta = 0 would make the check vacuous).
func TestPerturbedSiblingDiffers(t *testing.T) {
	for _, cg := range Corpus() {
		h := PerturbedSibling(cg.G)
		same := true
		for i := 0; i < cg.G.NumEdges(); i++ {
			if cg.G.Edge(i).P != h.Edge(i).P {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: perturbed sibling has identical probabilities", cg.Name)
		}
	}
}
