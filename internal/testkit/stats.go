package testkit

import (
	"fmt"
	"math"
	"sort"
)

// Statistical assertions: goodness-of-fit tests with honest p-values for
// samplers whose contract is a distribution, not a number. Every test
// site goes through RetryGOF, which applies the package's fixed-seed
// retry policy:
//
//   - significance Alpha = 1e-4 per attempt;
//   - two attempts with independent pinned seeds, failing only when BOTH
//     reject.
//
// For a correct sampler the two attempts reject independently, so the
// per-site false-failure probability is Alpha^2 = 1e-8; across the few
// dozen GOF sites in the suite the aggregate expected false-failure rate
// stays below 1e-6, while a genuinely wrong distribution rejects both
// attempts with probability ~1. The seeds are pinned, so a given build
// either passes forever or fails forever — the budget is the probability
// the pinned seeds were unlucky when they were chosen.

// Alpha is the per-attempt significance level of the GOF assertions.
const Alpha = 1e-4

// gofSeeds are the two pinned seeds of the retry policy.
var gofSeeds = [2]uint64{0x1f0e1d2c3b4a5968, 0xc4f3a2b1d0e9f887}

// RetryGOF evaluates a goodness-of-fit p-value under each pinned seed and
// returns an error only if every attempt rejects at Alpha. A NaN p-value
// fails immediately — that is a broken test statistic, not bad luck.
func RetryGOF(name string, pAt func(seed uint64) float64) error {
	var ps []float64
	for _, seed := range gofSeeds {
		p := pAt(seed)
		if math.IsNaN(p) {
			return fmt.Errorf("%s: p-value is NaN", name)
		}
		if p >= Alpha {
			return nil
		}
		ps = append(ps, p)
	}
	return fmt.Errorf("%s: rejected under both seeds (p = %v, alpha = %v)",
		name, ps, Alpha)
}

// ChiSquare computes Pearson's statistic and its upper-tail p-value for
// observed counts against expected counts (same length, expected > 0).
// Degrees of freedom default to len(obs)-1; pass ddof > 0 to subtract
// additional fitted parameters. The caller is responsible for binning so
// that expected counts are large enough for the chi-square approximation
// (the usual rule: at least ~5, the suite keeps them >= 25).
func ChiSquare(obs, expected []float64, ddof int) (stat, p float64, err error) {
	if len(obs) != len(expected) {
		return 0, 0, fmt.Errorf("chi-square: %d observed vs %d expected cells",
			len(obs), len(expected))
	}
	df := len(obs) - 1 - ddof
	if df < 1 {
		return 0, 0, fmt.Errorf("chi-square: %d cells leave no degrees of freedom", len(obs))
	}
	for i := range obs {
		if expected[i] <= 0 {
			return 0, 0, fmt.Errorf("chi-square: expected[%d] = %v <= 0", i, expected[i])
		}
		d := obs[i] - expected[i]
		stat += d * d / expected[i]
	}
	return stat, gammaIncQ(float64(df)/2, stat/2), nil
}

// ChiSquareTail returns the upper-tail probability P(X > stat) for a
// chi-square variable with df degrees of freedom. Use it when the
// statistic is assembled by hand (e.g. a sum of per-edge z^2 terms)
// rather than from count cells.
func ChiSquareTail(stat float64, df int) float64 {
	return gammaIncQ(float64(df)/2, stat/2)
}

// KolmogorovSmirnov computes the one-sample KS statistic of samples
// against a continuous CDF and its asymptotic p-value (with the Stephens
// small-sample correction). samples is sorted in place.
func KolmogorovSmirnov(samples []float64, cdf func(float64) float64) (d, p float64) {
	sort.Float64s(samples)
	n := float64(len(samples))
	for i, x := range samples {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d, ksPValue(d, len(samples))
}

// ksPValue returns the asymptotic Kolmogorov upper-tail probability
// P(D_n > d), using the Stephens correction lambda = d*(sqrt(n) + 0.12 +
// 0.11/sqrt(n)) and the alternating series 2*sum (-1)^{k-1} e^{-2k^2
// lambda^2}.
func ksPValue(d float64, n int) float64 {
	if d <= 0 {
		return 1
	}
	sq := math.Sqrt(float64(n))
	lambda := (sq + 0.12 + 0.11/sq) * d
	var sum float64
	sign := 1.0
	for k := 1; k <= 101; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*(math.Abs(sum)+1e-300) {
			break
		}
		sign = -sign
	}
	return math.Max(0, math.Min(1, 2*sum))
}

// gammaIncQ is the regularized upper incomplete gamma function Q(a, x),
// the chi-square upper-tail probability for a = df/2, x = stat/2.
// Series expansion for x < a+1, continued fraction otherwise (the
// classic normalized-gamma split; both converge fast in their regime).
func gammaIncQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeriesP(a, x)
	default:
		return gammaContFracQ(a, x)
	}
}

// gammaSeriesP computes P(a, x) by the power series
// P(a,x) = x^a e^-x / Gamma(a) * sum_n x^n / (a(a+1)...(a+n)).
func gammaSeriesP(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContFracQ computes Q(a, x) by the Lentz continued fraction.
func gammaContFracQ(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// RareCountMax returns the smallest cutoff c such that a Binomial(n, p)
// count exceeds c with probability below 1e-9, via the Chernoff bound
// P(X >= c) <= e^{-lam} (e*lam/c)^c with lam = n*p (valid for binomials
// since their MGF is dominated by the Poisson's). It lets the marginal
// tests pin down edges whose expected count is too small for a
// chi-square cell: the observed count must simply not exceed the cutoff.
func RareCountMax(p float64, n int) int {
	lam := float64(n) * p
	if lam == 0 {
		return 0 // impossible event: any hit at all is a bug
	}
	for c := 1; ; c++ {
		logTail := -lam + float64(c)*(1+math.Log(lam)-math.Log(float64(c)))
		if logTail < math.Log(1e-9) {
			return c
		}
	}
}
