// Package testkit is the repo's verification subsystem: the machinery
// that checks the statistical claims of the pipeline rather than its
// determinism. Pinned seeds prove that an estimator reproduces itself;
// they prove nothing about whether it estimates the right quantity. The
// oracle hierarchy here does:
//
//   - exact oracles — exhaustive possible-world enumeration
//     (internal/exact) gives ground truth on small graphs, including the
//     exact variance of every sampled statistic, from which confidence
//     tolerances follow instead of hand-tuned epsilons;
//   - differential oracles — two independently coded Monte Carlo
//     estimators (the production bitset engine in internal/reliability and
//     the deliberately naive BFS engine in this package) must agree with
//     the exact values within Z standard errors;
//   - statistical assertions — chi-square and Kolmogorov–Smirnov
//     goodness-of-fit tests validate samplers whose outputs are
//     distributions, with a fixed-seed retry policy that keeps the
//     expected false-failure rate below 1e-6;
//   - certificate checking — an independent re-derivation of the
//     (k, ε)-obfuscation guarantee (Definition 3) that re-verifies any
//     published graph from scratch, shared by unit tests and cmd/certify;
//   - metamorphic checks (CheckAll) — invariances the system must satisfy
//     whatever the inputs: vertex-relabel invariance, Δ monotonicity in
//     σ, and seed/worker-count independence of committed estimates.
//
// Everything in this package is deterministic under fixed seeds: no
// time.Now(), no global rand. See DESIGN.md §10 for the strategy.
package testkit

import (
	"chameleon/internal/uncertain"
)

// CorpusGraph is one entry of the deterministic seed corpus: a small
// graph with known structure, small enough for exhaustive possible-world
// enumeration, plus capability flags that say which oracles apply.
type CorpusGraph struct {
	// Name identifies the entry in test output.
	Name string
	// G is the graph itself. Corpus graphs are rebuilt on every call, so
	// mutating one never leaks between tests.
	G *uncertain.Graph
	// InteriorProbs is true when every edge probability lies strictly in
	// (0, 1); the ERR differential oracle requires it (edges pinned at 0
	// or 1 take the production estimator's conditional fallback path,
	// which has its own budget and is exercised separately).
	InteriorProbs bool
}

// Corpus returns the deterministic seed corpus used by the differential
// oracles. Every graph has at most 12 edges (4096 worlds), so exact
// enumeration of all pair reliabilities, connected-pair moments and
// conditional edge statistics stays cheap. The corpus spans the
// structural regimes the estimators must handle: paths, cycles, stars,
// cliques, bridges, disconnected pieces, certain and near-certain edges,
// and near-impossible edges.
func Corpus() []CorpusGraph {
	build := func(name string, n int, interior bool, edges ...uncertain.Edge) CorpusGraph {
		g := uncertain.New(n)
		for _, e := range edges {
			g.MustAddEdge(e.U, e.V, e.P)
		}
		return CorpusGraph{Name: name, G: g, InteriorProbs: interior}
	}
	e := func(u, v uncertain.NodeID, p float64) uncertain.Edge {
		return uncertain.Edge{U: u, V: v, P: p}
	}
	return []CorpusGraph{
		build("path4", 4, true,
			e(0, 1, 0.5), e(1, 2, 0.9), e(2, 3, 0.3)),
		build("cycle5", 5, true,
			e(0, 1, 0.7), e(1, 2, 0.4), e(2, 3, 0.6), e(3, 4, 0.55), e(0, 4, 0.25)),
		build("star6", 6, true,
			e(0, 1, 0.8), e(0, 2, 0.35), e(0, 3, 0.5), e(0, 4, 0.65), e(0, 5, 0.2)),
		build("k4", 4, true,
			e(0, 1, 0.3), e(0, 2, 0.5), e(0, 3, 0.7), e(1, 2, 0.45), e(1, 3, 0.6), e(2, 3, 0.35)),
		build("bridge", 7, true,
			// Two triangles joined by a single bridge edge: the bridge
			// carries nearly all reliability relevance.
			e(0, 1, 0.8), e(1, 2, 0.75), e(0, 2, 0.7),
			e(3, 4, 0.8), e(4, 5, 0.7), e(3, 5, 0.85),
			e(2, 3, 0.5), e(5, 6, 0.4)),
		build("disconnected", 6, true,
			e(0, 1, 0.6), e(1, 2, 0.5), e(3, 4, 0.7), e(4, 5, 0.45)),
		build("certain", 5, false,
			// Mixed certain/impossible edges exercise the no-draw sampler
			// paths: p=1 always present, p=0 never.
			e(0, 1, 1), e(1, 2, 1), e(2, 3, 0), e(3, 4, 0.5), e(0, 4, 1)),
		build("extreme", 5, true,
			// Probabilities at the edge of the representable range stress
			// threshold rounding in the bitset sampler.
			e(0, 1, 0.999), e(1, 2, 0.001), e(2, 3, 0.9999), e(3, 4, 1e-6), e(0, 3, 0.5)),
		build("twoblocks", 8, true,
			e(0, 1, 0.7), e(1, 2, 0.65), e(0, 2, 0.75),
			e(3, 4, 0.6), e(4, 5, 0.7), e(3, 5, 0.65),
			e(2, 3, 0.3), e(5, 6, 0.5), e(6, 7, 0.55), e(0, 7, 0.15)),
	}
}

// SamplingCorpus returns graphs for distribution-level sampler tests.
// They are too large for exact enumeration but deliberately trigger every
// sampling path, in particular the geometric-skip classes (>= 16 edges
// sharing one low probability) that FastSampling uses.
func SamplingCorpus() []CorpusGraph {
	out := Corpus()

	// A 40-edge graph holding two geometric-skip classes (20 edges at
	// p=0.05, 16 at p=0.2), a dense remainder, and certain edges.
	g := uncertain.New(30)
	id := 0
	add := func(p float64) {
		// Lay edges on a ring with growing chord lengths so no duplicates
		// appear and the graph stays simple.
		u := uncertain.NodeID(id % 30)
		v := uncertain.NodeID((id + 1 + id/30) % 30)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, p)
		}
		id++
	}
	for i := 0; i < 20; i++ {
		add(0.05)
	}
	for i := 0; i < 16; i++ {
		add(0.2)
	}
	for i := 0; i < 6; i++ {
		add(0.7)
	}
	add(1)
	add(0)
	out = append(out, CorpusGraph{Name: "skipclasses", G: g})
	return out
}
