package testkit

import (
	"fmt"

	"chameleon/internal/exact"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// DifferentialOracle cross-checks the three reliability engines on one
// corpus graph: exact enumeration (internal/exact) gives the truth, and
// both the production bitset Monte Carlo engine (internal/reliability,
// default and FastSampling world streams) and the independent naive BFS
// engine (NaiveEstimator) must land within Z standard errors of it, with
// every tolerance derived from the exact per-world moments. It returns
// one error per violated assertion; an empty slice means the engines
// agree on reliability, connected pairs, Delta-discrepancy and ERR.
func DifferentialOracle(cg CorpusGraph, samples int, seed uint64) []error {
	g := cg.G
	var errs []error
	fail := func(err error) {
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", cg.Name, err))
		}
	}

	mo, err := ExactMoments(g)
	if err != nil {
		return []error{fmt.Errorf("%s: exact moments: %w", cg.Name, err)}
	}

	bitset := reliability.Estimator{Samples: samples, Seed: seed}
	fast := reliability.Estimator{Samples: samples, Seed: seed, FastSampling: true}
	naive := NaiveEstimator{Samples: samples, Seed: seed}

	// Pair reliability: the full matrix from each Monte Carlo engine
	// against the enumerated truth, binomial-proportion tolerances.
	n := g.NumNodes()
	checkMatrix := func(engine string, r func(u, v uncertain.NodeID) float64) {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				want := mo.PairR[u][v]
				got := r(uncertain.NodeID(u), uncertain.NodeID(v))
				fail(CheckClose(
					fmt.Sprintf("%s R(%d,%d)", engine, u, v),
					got, want, BernoulliTol(want, samples)))
			}
		}
	}
	rows := bitset.SampleLabels(g)
	checkMatrix("bitset", func(u, v uncertain.NodeID) float64 {
		return pairFromLabels(rows, u, v, samples)
	})
	checkMatrix("naive", func(u, v uncertain.NodeID) float64 {
		return naive.PairReliability(g, u, v)
	})
	// One direct call through the public per-pair entry point, so the
	// PairReliability code path itself (not just SampleLabels) is covered.
	fail(CheckClose("bitset PairReliability(0,last)",
		bitset.PairReliability(g, 0, uncertain.NodeID(n-1)),
		mo.PairR[0][n-1], BernoulliTol(mo.PairR[0][n-1], samples)))

	// Expected connected pairs: mean of cc(W), exact variance known.
	ccTol := MeanTol(mo.CCVar, samples)
	fail(CheckClose("bitset E[cc]", bitset.ExpectedConnectedPairs(g), mo.CCMean, ccTol))
	fail(CheckClose("fast E[cc]", fast.ExpectedConnectedPairs(g), mo.CCMean, ccTol))
	fail(CheckClose("naive E[cc]", naive.ExpectedConnectedPairs(g), mo.CCMean, ccTol))

	// Delta-discrepancy against a deterministically perturbed sibling.
	h := PerturbedSibling(g)
	wantDelta, err := exact.Discrepancy(g, h)
	if err != nil {
		fail(fmt.Errorf("exact discrepancy: %w", err))
		return errs
	}
	rh, err := exact.AllPairReliability(h)
	if err != nil {
		fail(fmt.Errorf("exact pair reliability (sibling): %w", err))
		return errs
	}
	dTol := DiscrepancyTol(mo.PairR, rh, samples)
	gotDelta, err := bitset.Discrepancy(g, h)
	if err != nil {
		fail(err)
	} else {
		fail(CheckClose("bitset Delta", gotDelta, wantDelta, dTol))
	}
	fail(CheckClose("naive Delta", naive.Discrepancy(g, h), wantDelta, dTol))

	// Edge reliability relevance, both estimator families. Edges pinned
	// at 0 or 1 are skipped: the grouped estimator serves them through a
	// separately budgeted conditional fallback whose error is not bounded
	// by the split-sample analysis below.
	grouped := bitset.EdgeRelevance(g)
	coupled := naive.EdgeRelevance(g)
	for i := 0; i < g.NumEdges(); i++ {
		p := g.Edge(i).P
		if p <= 0 || p >= 1 {
			continue
		}
		gTol := GroupedERRTol(mo, i, p, samples)
		fail(CheckClose(fmt.Sprintf("bitset ERR[%d] (p=%v)", i, p),
			grouped[i], mo.ERR[i], gTol))
		fail(CheckClose(fmt.Sprintf("naive ERR[%d] (p=%v)", i, p),
			coupled[i], mo.ERR[i], CoupledERRTol(mo, i, samples)))
	}
	return errs
}

// PerturbedSibling derives a deterministic perturbed companion of g for
// discrepancy oracles: every probability is pushed toward the middle of
// the unit interval (p' = 0.25 + p/2), guaranteeing a nonzero exact
// Delta while keeping the sibling enumerable.
func PerturbedSibling(g *uncertain.Graph) *uncertain.Graph {
	h := g.Clone()
	for i := 0; i < h.NumEdges(); i++ {
		p := h.Edge(i).P
		if err := h.SetProb(i, 0.25+p/2); err != nil {
			panic(err) // unreachable: 0.25+p/2 is in [0.25, 0.75]
		}
	}
	return h
}

// pairFromLabels derives R(u,v) from per-world component labels.
func pairFromLabels(rows [][]int32, u, v uncertain.NodeID, samples int) float64 {
	hits := 0
	for _, row := range rows {
		if row[u] == row[v] {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}
