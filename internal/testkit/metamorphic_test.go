package testkit

import "testing"

// TestCheckAll runs the metamorphic invariance pass: vertex-relabel
// invariance, Delta monotonicity in sigma, and seed/worker-count
// independence, across the whole corpus.
func TestCheckAll(t *testing.T) {
	for _, err := range CheckAll(3000, 0xbead5) {
		t.Error(err)
	}
}

// TestRelabelPreservesStructure sanity-checks the Relabel helper the
// metamorphic pass builds on.
func TestRelabelPreservesStructure(t *testing.T) {
	for _, cg := range Corpus() {
		g := cg.G
		perm := reversePerm(g.NumNodes())
		h := Relabel(g, perm)
		if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: relabel changed size", cg.Name)
		}
		for i := 0; i < g.NumEdges(); i++ {
			e, f := g.Edge(i), h.Edge(i)
			if f.P != e.P {
				t.Errorf("%s edge %d: probability changed %v -> %v", cg.Name, i, e.P, f.P)
			}
			pu, pv := perm[e.U], perm[e.V]
			if pu > pv {
				pu, pv = pv, pu
			}
			if f.U != pu || f.V != pv {
				t.Errorf("%s edge %d: endpoints (%d,%d), want (%d,%d)", cg.Name, i, f.U, f.V, pu, pv)
			}
		}
	}
}
