package testkit

import (
	"testing"
)

// TestCSROracle runs the CSR bit-identity oracle over the sampling corpus
// (which includes the exact-enumeration corpus plus the geometric-skip
// stress graph): the packed view must reproduce the slice-backed engine's
// estimates bit for bit on every graph, mode and stream.
func TestCSROracle(t *testing.T) {
	const samples = 200
	const seed = 0xC5A
	for _, cg := range SamplingCorpus() {
		cg := cg
		t.Run(cg.Name, func(t *testing.T) {
			t.Parallel()
			for _, err := range CSROracle(cg, samples, seed) {
				t.Error(err)
			}
		})
	}
}
