package testkit_test

import (
	"fmt"
	"math"
	"testing"

	"chameleon"
	"chameleon/internal/privacy"
	"chameleon/internal/testkit"
	"chameleon/internal/uncertain"
)

// anonGraph builds the small heavy-tailed graph the facade tests use for
// fast anonymization.
func anonGraph() *uncertain.Graph {
	g := uncertain.New(120)
	for i := 1; i < 120; i++ {
		g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i/2), 0.6)
		if i > 1 && !g.HasEdge(uncertain.NodeID(i), uncertain.NodeID(i-1)) {
			g.MustAddEdge(uncertain.NodeID(i), uncertain.NodeID(i-1), 0.3)
		}
	}
	return g
}

// TestCertifyPublishedGraphs is the certificate checker's main contract:
// every method's published output must be independently certifiable, and
// the independent verdict must agree with the production checker's count
// (up to the documented Boundary band).
func TestCertifyPublishedGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("anonymization e2e in -short mode")
	}
	g := anonGraph()
	const (
		k   = 5
		eps = 0.05
	)
	for _, m := range []chameleon.Method{
		chameleon.MethodRSME, chameleon.MethodRS, chameleon.MethodME, chameleon.MethodRepAn,
	} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			t.Parallel()
			res, err := chameleon.Anonymize(g, chameleon.Options{
				K: k, Epsilon: eps, Method: m, Samples: 100, Seed: 9,
			})
			if err != nil {
				t.Fatalf("Anonymize(%s): %v", m, err)
			}
			cert, err := testkit.CheckCertificate(g, res.Graph, k, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !cert.Valid {
				t.Fatalf("%s output fails independent certification: eps~ = %v > %v (non-obf %d/%d)",
					m, cert.EpsilonTilde, eps, cert.NonObfuscated, cert.Vertices)
			}
			if cert.MinEntropy < math.Log2(k)-testkit.EntropyTolerance && cert.NonObfuscated == 0 {
				t.Errorf("MinEntropy %v below threshold but no vertex counted non-obfuscated", cert.MinEntropy)
			}

			// Agreement with the production checker: the certificate may be
			// lenient only inside its documented Boundary band.
			rep, err := privacy.CheckObfuscation(res.Graph, privacy.DegreeProperty(g), k)
			if err != nil {
				t.Fatal(err)
			}
			if rep.NonObfuscated < cert.NonObfuscated ||
				rep.NonObfuscated > cert.NonObfuscated+cert.Boundary {
				t.Errorf("production counts %d non-obfuscated, certificate %d (+%d boundary): implementations disagree",
					rep.NonObfuscated, cert.NonObfuscated, cert.Boundary)
			}

			// Relabel invariance of the certificate itself: renaming the
			// vertices of both graphs must not change the verdict.
			n := g.NumNodes()
			perm := make([]uncertain.NodeID, n)
			for v := range perm {
				perm[v] = uncertain.NodeID(n - 1 - v)
			}
			rcert, err := testkit.CheckCertificate(
				testkit.Relabel(g, perm), testkit.Relabel(res.Graph, perm), k, eps)
			if err != nil {
				t.Fatal(err)
			}
			if rcert.NonObfuscated != cert.NonObfuscated || rcert.Valid != cert.Valid {
				t.Errorf("relabeling changed the certificate: %+v vs %+v", rcert, cert)
			}
			if math.Abs(rcert.MinEntropy-cert.MinEntropy) > 1e-9 {
				t.Errorf("relabeling moved MinEntropy: %v vs %v", rcert.MinEntropy, cert.MinEntropy)
			}
		})
	}
}

// TestCertificateRejectsUnprotectedGraph feeds the checker a published
// graph that plainly violates the guarantee: a certain star whose hub has
// a unique degree, so its posterior entropy is 0.
func TestCertificateRejectsUnprotectedGraph(t *testing.T) {
	const n = 10
	star := uncertain.New(n)
	for v := 1; v < n; v++ {
		star.MustAddEdge(0, uncertain.NodeID(v), 1)
	}
	cert, err := testkit.CheckCertificate(star, star, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Valid {
		t.Fatal("a certain star must not certify at eps=0: the hub's degree is unique")
	}
	if cert.NonObfuscated < 1 {
		t.Fatalf("NonObfuscated = %d, want at least the hub", cert.NonObfuscated)
	}
	if cert.MinEntropy != 0 {
		t.Errorf("MinEntropy = %v, want 0 (hub posterior is a point mass)", cert.MinEntropy)
	}
}

// TestCertificateInputValidation covers the error paths.
func TestCertificateInputValidation(t *testing.T) {
	g := uncertain.New(5)
	g.MustAddEdge(0, 1, 0.5)
	h := uncertain.New(6)
	cases := []struct {
		name string
		run  func() error
	}{
		{"size mismatch", func() error { _, err := testkit.CheckCertificate(g, h, 2, 0.1); return err }},
		{"k too small", func() error { _, err := testkit.CheckCertificate(g, g, 0, 0.1); return err }},
		{"k too large", func() error { _, err := testkit.CheckCertificate(g, g, 6, 0.1); return err }},
		{"eps negative", func() error { _, err := testkit.CheckCertificate(g, g, 2, -0.1); return err }},
		{"eps above one", func() error { _, err := testkit.CheckCertificate(g, g, 2, 1.5); return err }},
		{"empty graph", func() error {
			e := uncertain.New(0)
			_, err := testkit.CheckCertificate(e, e, 1, 0.1)
			return err
		}},
	}
	for _, c := range cases {
		if err := c.run(); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

// TestCertificateMatchesProductionOnCorpus compares the two checkers on
// every corpus graph published "as itself" across several k — a broad,
// cheap agreement sweep with no anonymization in the loop.
func TestCertificateMatchesProductionOnCorpus(t *testing.T) {
	for _, cg := range testkit.Corpus() {
		for _, k := range []int{1, 2, 3} {
			if k > cg.G.NumNodes() {
				continue
			}
			cert, err := testkit.CheckCertificate(cg.G, cg.G, k, 1)
			if err != nil {
				t.Fatalf("%s k=%d: %v", cg.Name, k, err)
			}
			rep, err := privacy.CheckObfuscation(cg.G, privacy.DegreeProperty(cg.G), k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", cg.Name, k, err)
			}
			if rep.NonObfuscated < cert.NonObfuscated ||
				rep.NonObfuscated > cert.NonObfuscated+cert.Boundary {
				t.Errorf("%s k=%d: production %d vs certificate %d (+%d boundary)",
					cg.Name, k, rep.NonObfuscated, cert.NonObfuscated, cert.Boundary)
			}
			if got := fmt.Sprintf("%.6f", cert.EpsilonTilde); cert.NonObfuscated == 0 && got != "0.000000" {
				t.Errorf("%s k=%d: eps~ %s with zero non-obfuscated vertices", cg.Name, k, got)
			}
		}
	}
}
