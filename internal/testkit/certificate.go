package testkit

import (
	"fmt"
	"math"

	"chameleon/internal/uncertain"
)

// EntropyTolerance is the slack (in bits) the certificate checker allows
// around the log2(k) entropy threshold. The production checker and this
// one accumulate the same sums in different orders with different
// algebra, so a vertex sitting exactly on the threshold could flip
// verdicts on float noise alone; 1e-9 bits is orders of magnitude above
// that noise and orders of magnitude below any real entropy gap. Vertices
// inside the band are counted separately (Certificate.Boundary) so a
// graph that passes only by grace of the tolerance is visible.
const EntropyTolerance = 1e-9

// Certificate is the outcome of an independent (k, eps)-obfuscation
// re-verification of a published graph (Definition 3).
type Certificate struct {
	// K and Epsilon echo the claim being checked.
	K       int
	Epsilon float64
	// Vertices is |V|.
	Vertices int
	// NonObfuscated counts vertices whose degree-posterior entropy falls
	// clearly below log2(K) (beyond EntropyTolerance), including vertices
	// whose property value has no probability mass in the published graph
	// (an empty posterior means the adversary isolates them outright).
	NonObfuscated int
	// Boundary counts vertices within EntropyTolerance of the threshold —
	// zero for any healthy published graph.
	Boundary int
	// EpsilonTilde is NonObfuscated / Vertices.
	EpsilonTilde float64
	// MinEntropy is the smallest posterior entropy over the property
	// values that occur, in bits (0 when some posterior is empty).
	MinEntropy float64
	// Valid reports EpsilonTilde <= Epsilon: the published graph delivers
	// the claimed guarantee.
	Valid bool
}

// CheckCertificate re-verifies from scratch that pub (k, eps)-obfuscates
// the vertices of orig against a degree-knowledge adversary. It shares no
// code with internal/privacy: expected degrees come from a direct edge
// scan, degree distributions from divide-and-conquer convolution
// (PoissonBinomial), and posterior entropies from explicit normalization
// — so it certifies the production pipeline rather than replaying it.
//
// The adversary model matches the paper's: the attacker knows each
// target's (rounded expected) degree in the original graph and observes
// the published uncertain graph. For every degree value w, the posterior
// over candidate vertices is
//
//	Y_w(u) = Pr[deg_pub(u) = w] / sum_x Pr[deg_pub(x) = w]
//
// and a vertex with property value w hides iff H(Y_w) >= log2(k).
func CheckCertificate(orig, pub *uncertain.Graph, k int, eps float64) (Certificate, error) {
	n := orig.NumNodes()
	if pub.NumNodes() != n {
		return Certificate{}, fmt.Errorf("testkit: published graph has %d vertices, original %d",
			pub.NumNodes(), n)
	}
	if n == 0 {
		return Certificate{}, fmt.Errorf("testkit: empty graph")
	}
	if k < 1 || k > n {
		return Certificate{}, fmt.Errorf("testkit: k=%d out of [1, %d]", k, n)
	}
	if eps < 0 || eps > 1 {
		return Certificate{}, fmt.Errorf("testkit: epsilon=%v out of [0, 1]", eps)
	}

	// Adversary knowledge: rounded expected degree of every original
	// vertex, by direct edge scan.
	expDeg := make([]float64, n)
	for _, e := range orig.Edges() {
		expDeg[e.U] += e.P
		expDeg[e.V] += e.P
	}
	property := make([]int, n)
	for v, d := range expDeg {
		property[v] = int(math.Round(d))
	}

	// Published degree distributions via independent D&C convolution.
	incident := make([][]float64, n)
	for _, e := range pub.Edges() {
		incident[e.U] = append(incident[e.U], e.P)
		incident[e.V] = append(incident[e.V], e.P)
	}
	dists := make([][]float64, n)
	for v := range dists {
		dists[v] = PoissonBinomial(incident[v])
	}

	// Posterior entropy per distinct property value, by explicit
	// normalization (collect the mass vector, divide, sum -y*log2(y)).
	entropyOf := func(w int) (h float64, ok bool) {
		var mass float64
		ys := make([]float64, 0, n)
		for v := 0; v < n; v++ {
			var p float64
			if w >= 0 && w < len(dists[v]) {
				p = dists[v][w]
			}
			ys = append(ys, p)
			mass += p
		}
		if mass <= 0 {
			return 0, false
		}
		for _, y := range ys {
			if y > 0 {
				y /= mass
				h -= y * math.Log2(y)
			}
		}
		return h, true
	}

	threshold := math.Log2(float64(k))
	entCache := map[int]float64{}
	okCache := map[int]bool{}
	cert := Certificate{K: k, Epsilon: eps, Vertices: n, MinEntropy: math.Inf(1)}
	for _, w := range property {
		if w < 0 {
			w = 0
		}
		h, seen := entCache[w]
		if !seen {
			var ok bool
			h, ok = entropyOf(w)
			entCache[w] = h
			okCache[w] = ok
		}
		if !okCache[w] {
			cert.NonObfuscated++
			cert.MinEntropy = 0
			continue
		}
		if h < cert.MinEntropy {
			cert.MinEntropy = h
		}
		switch {
		case h < threshold-EntropyTolerance:
			cert.NonObfuscated++
		case h < threshold+EntropyTolerance:
			cert.Boundary++
		}
	}
	cert.EpsilonTilde = float64(cert.NonObfuscated) / float64(n)
	cert.Valid = cert.EpsilonTilde <= eps
	return cert, nil
}
