package testkit

// PoissonBinomial computes the exact distribution of a sum of independent
// Bernoulli(p_i) variables by divide-and-conquer convolution:
// out[j] = Pr[exactly j successes].
//
// This is deliberately a different algorithm from internal/privacy's
// sequential dynamic program — the certificate checker and the
// statistical assertions need an independently coded reference, so a bug
// in the production recurrence cannot cancel against itself.
func PoissonBinomial(probs []float64) []float64 {
	switch len(probs) {
	case 0:
		return []float64{1}
	case 1:
		return []float64{1 - probs[0], probs[0]}
	}
	mid := len(probs) / 2
	a := PoissonBinomial(probs[:mid])
	b := PoissonBinomial(probs[mid:])
	out := make([]float64, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] += ai * bj
		}
	}
	return out
}
