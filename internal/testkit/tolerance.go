package testkit

import (
	"fmt"
	"math"
)

// Z is the z-score the differential oracles allow between a Monte Carlo
// estimate and its exact value: |estimate - truth| <= Z * stderr. The
// two-sided normal tail beyond 6.5 sigma is ~8e-11, so even a few
// thousand assertions across the corpus keep the aggregate false-failure
// probability of the suite under 1e-6. The assertions are deterministic
// under the pinned seeds — this budget is the probability that the pinned
// seeds were unlucky in the first place.
const Z = 6.5

// tolFloor absorbs floating-point accumulation differences between
// estimators when the statistical tolerance itself is ~0 (certain
// events, pinned edges): pure summation-order noise, not sampling error.
const tolFloor = 1e-9

// BernoulliTol returns the oracle tolerance for an N-sample Monte Carlo
// estimate of an indicator probability p: Z standard errors of the
// binomial proportion, floored against exact-arithmetic noise.
func BernoulliTol(p float64, n int) float64 {
	return Z*math.Sqrt(p*(1-p)/float64(n)) + tolFloor
}

// MeanTol returns the oracle tolerance for an N-sample mean of a
// per-world statistic with exact variance v.
func MeanTol(v float64, n int) float64 {
	return Z*math.Sqrt(v/float64(n)) + tolFloor
}

// DiscrepancyTol bounds the error of an N-sample discrepancy estimate
// against the exact Delta, from the exact pair reliabilities of the two
// graphs. Delta-hat sums |p-hat_g - p-hat_h| over pairs; each pair's
// estimate error is a centered difference of two independent binomial
// proportions with standard deviation s_p = sqrt((pg(1-pg)+ph(1-ph))/N).
// Taking absolute values folds that noise, which biases each term upward
// by at most E|noise| = s_p*sqrt(2/pi); the remaining spread across pairs
// is bounded by sum(s_p) (Cauchy–Schwarz, since pairs share worlds and
// may be fully correlated). The tolerance is therefore
//
//	sum_p s_p * (sqrt(2/pi) + Z)
//
// — loose for many independent pairs, tight enough on the small corpus
// to catch real estimator bugs, and derived entirely from the sampling
// design.
func DiscrepancyTol(rg, rh [][]float64, n int) float64 {
	var sdSum float64
	nv := len(rg)
	for u := 0; u < nv; u++ {
		for v := u + 1; v < nv; v++ {
			pg, ph := rg[u][v], rh[u][v]
			sdSum += math.Sqrt((pg*(1-pg) + ph*(1-ph)) / float64(n))
		}
	}
	return sdSum*(math.Sqrt(2/math.Pi)+Z) + tolFloor
}

// GroupedERRTol bounds the error of the grouped (Algorithm 2) ERR
// estimate for edge e with probability p over N worlds: the two
// conditional means are estimated from the n_e worlds containing e and
// the N-n_e without it, so
//
//	Var(ERR-hat) = Var(cc|e)/n_e + Var(cc|not e)/n_ne.
//
// The split sizes are themselves binomial; the tolerance uses a Z-sigma
// lower bound on each side's count so the bound holds jointly. Returns
// +Inf when either side can plausibly receive fewer than 8 worlds — the
// caller should skip such edges (the corpus avoids them).
func GroupedERRTol(mo *Moments, e int, p float64, n int) float64 {
	nLo := func(q float64) float64 {
		mean := float64(n) * q
		return mean - Z*math.Sqrt(float64(n)*q*(1-q))
	}
	ne, nne := nLo(p), nLo(1-p)
	if ne < 8 || nne < 8 {
		return math.Inf(1)
	}
	return Z*math.Sqrt(mo.CondVar[1][e]/ne+mo.CondVar[0][e]/nne) + tolFloor
}

// CoupledERRTol bounds the error of the naive coupled ERR estimate for
// edge e over N worlds: Z standard errors of the coupled per-world
// difference.
func CoupledERRTol(mo *Moments, e int, n int) float64 {
	return MeanTol(mo.CoupledVar[e], n)
}

// CheckClose reports an error when got is farther than tol from want.
// It is the single comparison primitive of the differential oracles, so
// every failure message carries the tolerance provenance the caller
// passes in via context.
func CheckClose(context string, got, want, tol float64) error {
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		return fmt.Errorf("%s: got %v, want %v +/- %v (|diff| = %v)",
			context, got, want, tol, math.Abs(got-want))
	}
	return nil
}
