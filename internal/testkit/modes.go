package testkit

import (
	"fmt"

	"chameleon/internal/exact"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// ModeOracle cross-checks one variance-reduction sampling mode of the
// production Monte Carlo engine against exact enumeration on a corpus
// graph: pair reliabilities from the labeled worlds, expected connected
// pairs, and Delta-discrepancy against the perturbed sibling must all land
// within the Z-sigma tolerances derived from the exact moments. The
// tolerances assume independent worlds, which makes them conservative for
// every mode here — antithetic pairing and stratified lattices only lower
// the estimator variance, and coupled draws are independent across worlds.
//
// A final adaptive arm runs the same estimator with an unreachable RSE
// target and MaxSamples equal to the fixed budget: sequential stopping
// must then consume exactly the full budget and reproduce the fixed-N
// estimate bit-for-bit, proving the adaptive loop changes when sampling
// stops and never what is sampled.
func ModeOracle(cg CorpusGraph, samples int, seed uint64, mode uncertain.SamplingMode) []error {
	g := cg.G
	var errs []error
	fail := func(err error) {
		if err != nil {
			errs = append(errs, fmt.Errorf("%s/%s: %w", cg.Name, mode, err))
		}
	}

	mo, err := ExactMoments(g)
	if err != nil {
		return []error{fmt.Errorf("%s: exact moments: %w", cg.Name, err)}
	}

	est := reliability.Estimator{Samples: samples, Seed: seed, Mode: mode}

	// Pair reliability from the per-world component labels.
	rows := est.SampleLabels(g)
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			want := mo.PairR[u][v]
			got := pairFromLabels(rows, uncertain.NodeID(u), uncertain.NodeID(v), len(rows))
			fail(CheckClose(fmt.Sprintf("R(%d,%d)", u, v), got, want,
				BernoulliTol(want, samples)))
		}
	}

	// Expected connected pairs, threshold and geometric-skip world streams.
	ccTol := MeanTol(mo.CCVar, samples)
	gotCC := est.ExpectedConnectedPairs(g)
	fail(CheckClose("E[cc]", gotCC, mo.CCMean, ccTol))
	fast := est
	fast.FastSampling = true
	fail(CheckClose("fast E[cc]", fast.ExpectedConnectedPairs(g), mo.CCMean, ccTol))

	// Delta-discrepancy against the deterministic perturbed sibling. Under
	// the coupled mode the two graphs share every uniform, so the estimate
	// concentrates far inside this independent-worlds tolerance.
	h := PerturbedSibling(g)
	wantDelta, err := exact.Discrepancy(g, h)
	if err != nil {
		fail(fmt.Errorf("exact discrepancy: %w", err))
		return errs
	}
	rh, err := exact.AllPairReliability(h)
	if err != nil {
		fail(fmt.Errorf("exact pair reliability (sibling): %w", err))
		return errs
	}
	gotDelta, err := est.Discrepancy(g, h)
	if err != nil {
		fail(err)
	} else {
		fail(CheckClose("Delta", gotDelta, wantDelta, DiscrepancyTol(mo.PairR, rh, samples)))
	}

	// Adaptive-capped arm: an unreachable target forces the sequential
	// loop to the cap, which equals the fixed budget, so the estimate must
	// match the fixed-N run exactly (same worlds, same reduction order).
	capped := est
	capped.TargetRSE = 1e-9
	capped.MaxSamples = samples
	fail(CheckClose("adaptive-capped E[cc]", capped.ExpectedConnectedPairs(g), gotCC, 1e-12))
	return errs
}
