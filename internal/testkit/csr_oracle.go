package testkit

import (
	"fmt"
	"math"

	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

// CSROracle verifies the packed CSR adjacency view is estimate-transparent:
// every quantity computed on uncertain.NewCSR(g) must be BIT-IDENTICAL to
// the same computation on the slice-backed g — same sampled worlds, same
// component labels, same floats — not merely statistically close. The
// order-preserving CSR constructor makes the world streams replay exactly,
// so any drift here is a representation bug, never sampling noise.
//
// The check spans the quantities the engines serve (connected pairs, pair
// reliability, the full label matrix, discrepancy, edge relevance) across
// every sampling mode and both world streams, plus the derived statistics
// the privacy objectives consume. It returns one error per violated
// assertion; an empty slice means the two representations are
// interchangeable on this graph.
func CSROracle(cg CorpusGraph, samples int, seed uint64) []error {
	g := cg.G
	c := uncertain.NewCSR(g)
	var errs []error
	fail := func(what string, got, want float64) {
		if math.Float64bits(got) != math.Float64bits(want) {
			errs = append(errs, fmt.Errorf("%s: %s: CSR %v != graph %v", cg.Name, what, got, want))
		}
	}

	// Derived statistics: one scalar each, bitwise equal.
	fail("MeanProb", c.MeanProb(), g.MeanProb())
	fail("ExpectedNumEdges", c.ExpectedNumEdges(), g.ExpectedNumEdges())
	fail("ExpectedAvgDegree", c.ExpectedAvgDegree(), g.ExpectedAvgDegree())
	fail("DegreeStdDev", c.DegreeStdDev(), g.DegreeStdDev())
	if c.MaxStructuralDegree() != g.MaxStructuralDegree() {
		errs = append(errs, fmt.Errorf("%s: MaxStructuralDegree: CSR %d != graph %d",
			cg.Name, c.MaxStructuralDegree(), g.MaxStructuralDegree()))
	}
	gd, cd := g.ExpectedDegrees(), c.ExpectedDegrees()
	for v := range gd {
		fail(fmt.Sprintf("ExpectedDegrees[%d]", v), cd[v], gd[v])
	}

	// Estimates across every sampling mode and both world streams.
	for _, mode := range []uncertain.SamplingMode{
		uncertain.SampleIndependent, uncertain.SampleAntithetic,
		uncertain.SampleStratified, uncertain.SampleCoupled,
	} {
		for _, fastSampling := range []bool{false, true} {
			tag := fmt.Sprintf("mode=%s fast=%v", mode, fastSampling)
			eg := reliability.Estimator{Samples: samples, Seed: seed, Mode: mode, FastSampling: fastSampling}
			fail(tag+" E[cc]", eg.ExpectedConnectedPairs(c), eg.ExpectedConnectedPairs(g))
		}
	}

	est := reliability.Estimator{Samples: samples, Seed: seed}
	n := g.NumNodes()
	if n >= 2 {
		fail("PairReliability(0,last)",
			est.PairReliability(c, 0, uncertain.NodeID(n-1)),
			est.PairReliability(g, 0, uncertain.NodeID(n-1)))
		vg := est.ReliabilityVector(g, 0)
		vc := est.ReliabilityVector(c, 0)
		for v := range vg {
			fail(fmt.Sprintf("ReliabilityVector[%d]", v), vc[v], vg[v])
		}
	}

	// Full label matrix: the strongest form of the claim — every vertex's
	// component representative in every sampled world matches.
	lg := est.SampleLabels(g)
	lc := est.SampleLabels(c)
	for s := range lg {
		for v := range lg[s] {
			if lg[s][v] != lc[s][v] {
				errs = append(errs, fmt.Errorf("%s: label[world %d][vertex %d]: CSR %d != graph %d",
					cg.Name, s, v, lc[s][v], lg[s][v]))
			}
		}
	}

	// Discrepancy with mixed representations: the sibling stays
	// slice-backed while g swaps in its view, exercising the two-graph
	// paths with heterogeneous View implementations.
	h := PerturbedSibling(g)
	dg, errG := est.Discrepancy(g, h)
	dc, errC := est.Discrepancy(c, h)
	if (errG == nil) != (errC == nil) {
		errs = append(errs, fmt.Errorf("%s: Discrepancy errors diverge: graph %v, CSR %v", cg.Name, errG, errC))
	} else if errG == nil {
		fail("Discrepancy vs sibling", dc, dg)
	}

	rg := est.EdgeRelevance(g)
	rc := est.EdgeRelevance(c)
	for i := range rg {
		fail(fmt.Sprintf("EdgeRelevance[%d]", i), rc[i], rg[i])
	}
	return errs
}
