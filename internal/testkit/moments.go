package testkit

import (
	"chameleon/internal/exact"
	"chameleon/internal/uncertain"
	"chameleon/internal/unionfind"
)

// Moments holds the exact possible-world moments of a corpus graph: not
// just the expectations the estimators target but the variances of the
// per-world statistics, from which every differential tolerance in this
// package is derived. A Monte Carlo estimate over N worlds of a statistic
// with per-world variance V has standard error sqrt(V/N); the oracle
// asserts |estimate - truth| <= Z * stderr, so the tolerance tracks the
// sampling design instead of being a magic constant.
type Moments struct {
	// PairR[u][v] is the exact two-terminal reliability (Definition 1).
	PairR [][]float64
	// CCMean and CCVar are the mean and variance of the per-world
	// connected-pair count cc(W).
	CCMean, CCVar float64
	// CondMean[s][e] and CondVar[s][e] are the mean and variance of cc(W)
	// conditional on edge e being absent (s=0) or present (s=1); they
	// bound the error of the grouped ERR estimator (Algorithm 2).
	CondMean, CondVar [2][]float64
	// ERR[e] is the exact edge reliability relevance (Definition 5):
	// E[cc | e present] - E[cc | e absent].
	ERR []float64
	// CoupledVar[e] is the variance of the per-world coupled difference
	// cc(W with e forced present) - cc(W with e forced absent), the
	// statistic NaiveEstimator.EdgeRelevance averages. Its mean is ERR[e]
	// (forcing e does not disturb the other edges' distribution).
	CoupledVar []float64
}

// ExactMoments enumerates every possible world of g and accumulates the
// moments above. Cost is O(2^m * (m + alpha(n))); the corpus keeps m <= 12.
func ExactMoments(g *uncertain.Graph) (*Moments, error) {
	n := g.NumNodes()
	m := g.NumEdges()
	mo := &Moments{}
	for s := 0; s < 2; s++ {
		mo.CondMean[s] = make([]float64, m)
		mo.CondVar[s] = make([]float64, m)
	}
	// Conditional accumulators: probability mass, sum cc, sum cc^2 per
	// (edge, presence).
	var mass, sum, sq [2][]float64
	for s := 0; s < 2; s++ {
		mass[s] = make([]float64, m)
		sum[s] = make([]float64, m)
		sq[s] = make([]float64, m)
	}
	coupledSq := make([]float64, m)
	coupledMean := make([]float64, m)
	var ccMean, ccSq float64
	d := unionfind.New(n)
	ccOf := func(mask []bool, flip int) float64 {
		d.Reset()
		for i, present := range mask {
			if i == flip {
				present = !present
			}
			if present {
				e := g.Edge(i)
				d.Union(int(e.U), int(e.V))
			}
		}
		return float64(d.ConnectedPairs())
	}
	err := exact.ForEachWorld(g, func(mask []bool, pr float64) {
		cc := ccOf(mask, -1)
		ccMean += pr * cc
		ccSq += pr * cc * cc
		for i, present := range mask {
			s := 0
			if present {
				s = 1
			}
			mass[s][i] += pr
			sum[s][i] += pr * cc
			sq[s][i] += pr * cc * cc
			// Coupled difference: one of the two forced worlds is the
			// current world, the other differs in edge i only.
			diff := cc - ccOf(mask, i)
			if !present {
				diff = -diff
			}
			coupledMean[i] += pr * diff
			coupledSq[i] += pr * diff * diff
		}
	})
	if err != nil {
		return nil, err
	}
	mo.CCMean = ccMean
	mo.CCVar = clampVar(ccSq - ccMean*ccMean)
	mo.ERR = make([]float64, m)
	mo.CoupledVar = make([]float64, m)
	for i := 0; i < m; i++ {
		mo.CoupledVar[i] = clampVar(coupledSq[i] - coupledMean[i]*coupledMean[i])
		for s := 0; s < 2; s++ {
			if mass[s][i] > 0 {
				mean := sum[s][i] / mass[s][i]
				mo.CondMean[s][i] = mean
				mo.CondVar[s][i] = clampVar(sq[s][i]/mass[s][i] - mean*mean)
			}
		}
		// For edges pinned at probability 0 or 1 one side has no mass;
		// fall back to the exact unconditional-with-forced-bit values, the
		// quantity the production estimator's conditional path estimates.
		for s := 0; s < 2; s++ {
			if mass[s][i] == 0 {
				forced := g.Clone()
				if err := forced.SetProb(i, float64(s)); err != nil {
					return nil, err
				}
				cc, err := exact.ExpectedConnectedPairs(forced)
				if err != nil {
					return nil, err
				}
				mo.CondMean[s][i] = cc
				mo.CondVar[s][i] = 0 // not used for tolerance on this side
			}
		}
		mo.ERR[i] = mo.CondMean[1][i] - mo.CondMean[0][i]
	}
	mo.PairR, err = exact.AllPairReliability(g)
	if err != nil {
		return nil, err
	}
	return mo, nil
}

// clampVar guards exact-arithmetic variance computations against tiny
// negative values from floating-point cancellation.
func clampVar(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
