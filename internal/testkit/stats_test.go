package testkit

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"chameleon/internal/privacy"
	"chameleon/internal/truncnorm"
	"chameleon/internal/uncertain"
)

// gofSamples is the sample size of the distribution-level tests: large
// enough that the asymptotic chi-square/KS approximations are excellent,
// small enough to keep the suite fast.
const gofSamples = 20000

// truncCDF is the analytic CDF of the [0,1]-truncated half-normal,
// F(x) = erf(x/(sigma*sqrt2)) / erf(1/(sigma*sqrt2)).
func truncCDF(sigma float64) func(float64) float64 {
	z := math.Erf(1 / (sigma * math.Sqrt2))
	return func(x float64) float64 {
		switch {
		case x <= 0:
			return 0
		case x >= 1:
			return 1
		case z <= 0:
			return x // sigma so large the law is ~uniform
		}
		return math.Erf(x/(sigma*math.Sqrt2)) / z
	}
}

// TestTruncnormKS validates truncnorm.Sample against the analytic CDF
// with a Kolmogorov–Smirnov test, across sigmas covering the rejection
// path (sigma < 2), the inverse-CDF fallback (sigma >= 2), and the
// near-degenerate small-sigma regime.
func TestTruncnormKS(t *testing.T) {
	for _, sigma := range []float64{0.05, 0.3, 1, 3} {
		sigma := sigma
		t.Run(fmt.Sprintf("sigma=%v", sigma), func(t *testing.T) {
			t.Parallel()
			cdf := truncCDF(sigma)
			err := RetryGOF(fmt.Sprintf("truncnorm KS sigma=%v", sigma), func(seed uint64) float64 {
				rng := rand.New(rand.NewPCG(seed, 0xd15714b))
				xs := make([]float64, gofSamples)
				for i := range xs {
					xs[i] = truncnorm.Sample(rng, sigma)
				}
				_, p := KolmogorovSmirnov(xs, cdf)
				return p
			})
			if err != nil {
				t.Error(err)
			}
		})
	}
}

// TestTruncnormMean cross-checks the closed-form truncnorm.Mean against a
// numerical integral of the survival function, E[X] = integral of
// (1 - F(x)) over [0,1]. Deterministic — no sampling involved.
func TestTruncnormMean(t *testing.T) {
	for _, sigma := range []float64{0.05, 0.3, 1, 3, 10} {
		cdf := truncCDF(sigma)
		const steps = 1 << 16
		h := 1.0 / steps
		integral := 0.0
		for i := 0; i < steps; i++ {
			x := (float64(i) + 0.5) * h
			integral += (1 - cdf(x)) * h
		}
		if err := CheckClose(fmt.Sprintf("Mean(%v)", sigma),
			truncnorm.Mean(sigma), integral, 1e-8); err != nil {
			t.Error(err)
		}
	}
}

// sampleMode draws gofSamples worlds from g with the chosen sampler mode
// and returns per-edge presence counts.
func sampleMode(g *uncertain.Graph, geometric bool, seed uint64) []int {
	s := g.Sampler()
	pcg := rand.NewPCG(seed, 0x5a1ad)
	counts := make([]int, g.NumEdges())
	var w uncertain.World
	for i := 0; i < gofSamples; i++ {
		if geometric {
			s.SampleIntoGeometric(&w, pcg)
		} else {
			s.SampleInto(&w, pcg)
		}
		for j := range counts {
			if w.Present(j) {
				counts[j]++
			}
		}
	}
	return counts
}

// TestWorldSamplerMarginals checks that both world-sampling modes produce
// the right per-edge Bernoulli marginals on every sampling-corpus graph:
// a pooled chi-square over the well-populated edges, exact checks for
// pinned edges, and Chernoff-bounded count caps for edges too rare for a
// chi-square cell.
func TestWorldSamplerMarginals(t *testing.T) {
	for _, cg := range SamplingCorpus() {
		for _, geometric := range []bool{false, true} {
			cg, geometric := cg, geometric
			mode := "default"
			if geometric {
				mode = "geometric"
			}
			t.Run(cg.Name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				g := cg.G
				// Hard structural checks on the first pinned seed: pinned
				// edges are deterministic, rare edges Chernoff-capped (tail
				// < 1e-9 each, far below the suite budget).
				counts := sampleMode(g, geometric, gofSeeds[0])
				chiEdges := 0
				for j, c := range counts {
					p := g.Edge(j).P
					switch {
					case p <= 0:
						if c != 0 {
							t.Errorf("edge %d has p=0 but appeared %d times", j, c)
						}
					case p >= 1:
						if c != gofSamples {
							t.Errorf("edge %d has p=1 but appeared only %d/%d times", j, c, gofSamples)
						}
					case gofSamples*math.Min(p, 1-p) < 25:
						rare, rareP := c, p
						if p > 0.5 {
							rare, rareP = gofSamples-c, 1-p
						}
						if maxC := RareCountMax(rareP, gofSamples); rare > maxC {
							t.Errorf("edge %d (p=%v): rare-side count %d exceeds Chernoff cap %d",
								j, p, rare, maxC)
						}
					default:
						chiEdges++
					}
				}
				if chiEdges == 0 {
					return
				}
				// Marginal GOF on the well-populated edges: each edge's
				// standardized count z_j^2 is ~chi-square(1), and edges are
				// independent, so the sum is ~chi-square(chiEdges).
				err := RetryGOF("marginals "+cg.Name+"/"+mode, func(seed uint64) float64 {
					cs := sampleMode(g, geometric, seed)
					var stat float64
					for j, c := range cs {
						p := g.Edge(j).P
						if p <= 0 || p >= 1 || gofSamples*math.Min(p, 1-p) < 25 {
							continue
						}
						z := (float64(c) - gofSamples*p) / math.Sqrt(gofSamples*p*(1-p))
						stat += z * z
					}
					return ChiSquareTail(stat, chiEdges)
				})
				if err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestWorldSamplerPairwiseIndependence runs 2x2 chi-square independence
// checks on edge pairs drawn from the same geometric-skip class, across
// classes, and among dense edges — a correlation bug in the skip-gap
// arithmetic would show up here, not in the marginals.
func TestWorldSamplerPairwiseIndependence(t *testing.T) {
	var skip CorpusGraph
	for _, cg := range SamplingCorpus() {
		if cg.Name == "skipclasses" {
			skip = cg
		}
	}
	if skip.G == nil {
		t.Fatal("sampling corpus lost its skipclasses graph")
	}
	g := skip.G
	// Locate representative edge pairs by probability.
	firstTwo := func(p float64) [2]int {
		out := [2]int{-1, -1}
		for j := 0; j < g.NumEdges(); j++ {
			if g.Edge(j).P == p {
				if out[0] < 0 {
					out[0] = j
				} else if out[1] < 0 {
					out[1] = j
					break
				}
			}
		}
		return out
	}
	pairs := map[string][2]int{
		"same-class-0.05": firstTwo(0.05),
		"same-class-0.2":  firstTwo(0.2),
		"dense-0.7":       firstTwo(0.7),
		"cross-class":     {firstTwo(0.05)[0], firstTwo(0.2)[0]},
	}
	for name, pr := range pairs {
		if pr[0] < 0 || pr[1] < 0 {
			t.Fatalf("%s: pair not found in skipclasses graph", name)
		}
	}
	for _, geometric := range []bool{false, true} {
		geometric := geometric
		mode := "default"
		if geometric {
			mode = "geometric"
		}
		for name, pr := range pairs {
			name, pr := name, pr
			t.Run(name+"/"+mode, func(t *testing.T) {
				t.Parallel()
				pa, pb := g.Edge(pr[0]).P, g.Edge(pr[1]).P
				err := RetryGOF("independence "+name+"/"+mode, func(seed uint64) float64 {
					s := g.Sampler()
					pcg := rand.NewPCG(seed, 0x1d3)
					var w uncertain.World
					var obs [4]float64
					for i := 0; i < gofSamples; i++ {
						if geometric {
							s.SampleIntoGeometric(&w, pcg)
						} else {
							s.SampleInto(&w, pcg)
						}
						k := 0
						if w.Present(pr[0]) {
							k |= 1
						}
						if w.Present(pr[1]) {
							k |= 2
						}
						obs[k]++
					}
					exp := [4]float64{
						gofSamples * (1 - pa) * (1 - pb),
						gofSamples * pa * (1 - pb),
						gofSamples * (1 - pa) * pb,
						gofSamples * pa * pb,
					}
					_, p, err := ChiSquare(obs[:], exp[:], 0)
					if err != nil {
						t.Fatal(err)
					}
					return p
				})
				if err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestPoissonBinomialMatchesConvolution cross-checks internal/privacy's
// sequential DP against this package's independent divide-and-conquer
// convolution. Deterministic.
func TestPoissonBinomialMatchesConvolution(t *testing.T) {
	cases := [][]float64{
		{},
		{0.3},
		{0, 1, 0.5},
		{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		{1e-6, 0.999999, 0.5, 0.25, 0.75},
	}
	// Add every corpus vertex's incident-probability vector.
	for _, cg := range Corpus() {
		var buf []float64
		for v := 0; v < cg.G.NumNodes(); v++ {
			buf = cg.G.IncidentProbs(uncertain.NodeID(v), buf[:0])
			cases = append(cases, append([]float64(nil), buf...))
		}
	}
	for ci, probs := range cases {
		got := privacy.DegreeDistribution(probs)
		want := PoissonBinomial(probs)
		if len(got) != len(want) {
			t.Fatalf("case %d: length %d vs %d", ci, len(got), len(want))
		}
		var gSum, wSum float64
		for j := range got {
			if err := CheckClose(fmt.Sprintf("case %d P(deg=%d)", ci, j),
				got[j], want[j], 1e-12); err != nil {
				t.Error(err)
			}
			gSum += got[j]
			wSum += want[j]
		}
		if math.Abs(gSum-1) > 1e-12 || math.Abs(wSum-1) > 1e-12 {
			t.Errorf("case %d: distributions sum to %v (DP) and %v (D&C), want 1", ci, gSum, wSum)
		}
	}
}

// TestSampledDegreesMatchPoissonBinomial closes the loop between the
// world sampler and the privacy machinery: the empirical degree
// distribution of the star6 hub across sampled worlds must match its
// Poisson-binomial law (chi-square, all expected cells >= 25 by corpus
// construction).
func TestSampledDegreesMatchPoissonBinomial(t *testing.T) {
	var star CorpusGraph
	for _, cg := range Corpus() {
		if cg.Name == "star6" {
			star = cg
		}
	}
	if star.G == nil {
		t.Fatal("corpus lost its star6 graph")
	}
	g := star.G
	const hub = uncertain.NodeID(0)
	dist := privacy.DegreeDistribution(g.IncidentProbs(hub, nil))
	exp := make([]float64, len(dist))
	for j, p := range dist {
		exp[j] = gofSamples * p
		if exp[j] < 25 {
			t.Fatalf("expected cell %d = %v < 25; corpus no longer suits this test", j, exp[j])
		}
	}
	err := RetryGOF("sampled hub degrees", func(seed uint64) float64 {
		s := g.Sampler()
		pcg := rand.NewPCG(seed, 0xde9)
		var w uncertain.World
		obs := make([]float64, len(dist))
		for i := 0; i < gofSamples; i++ {
			s.SampleInto(&w, pcg)
			obs[w.Degree(hub)]++
		}
		_, p, err := ChiSquare(obs, exp, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p
	})
	if err != nil {
		t.Error(err)
	}
}
