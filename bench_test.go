package chameleon

// Benchmark harness regenerating the paper's tables and figures (see
// DESIGN.md §4 for the experiment index). Each BenchmarkTable*/Fig*
// exercises the code path that produces the corresponding artifact on the
// miniature quick datasets and reports the headline number via
// b.ReportMetric; `go run ./cmd/experiments` produces the full-scale
// versions recorded in EXPERIMENTS.md.

import (
	"math/rand/v2"
	"testing"
	"time"

	"chameleon/internal/anf"
	"chameleon/internal/centrality"
	"chameleon/internal/core"
	"chameleon/internal/exp"
	"chameleon/internal/gen"
	"chameleon/internal/hyperanf"
	"chameleon/internal/metrics"
	"chameleon/internal/obs"
	"chameleon/internal/obs/expose"
	"chameleon/internal/privacy"
	"chameleon/internal/reliability"
	"chameleon/internal/uncertain"
)

func benchConfig() exp.Config {
	return exp.Config{Quick: true, Seed: 7, Samples: 150, MetricSamples: 5, Pairs: 1000}
}

func benchGraph(b *testing.B) *uncertain.Graph {
	b.Helper()
	cfg := benchConfig()
	g, err := cfg.BuildDataset(cfg.Datasets()[0])
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTableIDatasets regenerates Table I: dataset construction and
// characteristic measurement.
func BenchmarkTableIDatasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		for _, d := range cfg.Datasets() {
			g, err := cfg.BuildDataset(d)
			if err != nil {
				b.Fatal(err)
			}
			_ = g.MeanProb()
			_ = g.ExpectedAvgDegree()
		}
	}
}

// BenchmarkFig3Distributions regenerates Figure 3: edge-probability and
// degree distributions of the datasets.
func BenchmarkFig3Distributions(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := cfg.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4RepAnDistortion regenerates one Figure 4 point: the
// Rep-An structural distortion against the Chameleon lower bound at the
// smallest k. The resulting ratio is reported as a metric.
func BenchmarkFig4RepAnDistortion(b *testing.B) {
	cfg := benchConfig()
	cfg.PaperKs = []int{100}
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		if r.Chameleon > 0 {
			gap = r.RepAn / r.Chameleon
		}
	}
	b.ReportMetric(gap, "repan/chameleon-error-ratio")
}

// benchFigureCell runs one (dataset, method, k) sweep cell and reports
// the chosen metric; shared by the Figure 8-11 benches.
func benchFigureCell(b *testing.B, method string, metric func(exp.Run) float64, unit string) {
	cfg := benchConfig()
	d := cfg.Datasets()[0]
	g, err := cfg.BuildDataset(d)
	if err != nil {
		b.Fatal(err)
	}
	base := cfg.MeasureBaseline(d, g)
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := cfg.RunCell(d, g, base, method, 200)
		if run.Failed {
			b.Fatalf("cell failed: %s", run.FailReason)
		}
		last = metric(run)
	}
	b.ReportMetric(last, unit)
}

// BenchmarkFig8Reliability regenerates Figure 8 cells: reliability
// preservation per method.
func BenchmarkFig8Reliability(b *testing.B) {
	for _, m := range exp.Methods {
		b.Run(m, func(b *testing.B) {
			benchFigureCell(b, m, func(r exp.Run) float64 { return r.RelDiscrepancy }, "rel-discrepancy")
		})
	}
}

// BenchmarkFig9AvgDegree regenerates Figure 9 cells: average-node-degree
// preservation per method.
func BenchmarkFig9AvgDegree(b *testing.B) {
	for _, m := range exp.Methods {
		b.Run(m, func(b *testing.B) {
			benchFigureCell(b, m, func(r exp.Run) float64 { return r.AvgDegreeErr }, "avg-degree-err")
		})
	}
}

// BenchmarkFig10AvgDistance regenerates Figure 10 cells: average-distance
// preservation per method.
func BenchmarkFig10AvgDistance(b *testing.B) {
	for _, m := range exp.Methods {
		b.Run(m, func(b *testing.B) {
			benchFigureCell(b, m, func(r exp.Run) float64 { return r.AvgDistanceErr }, "avg-distance-err")
		})
	}
}

// BenchmarkFig11Clustering regenerates Figure 11 cells: clustering
// coefficient preservation per method.
func BenchmarkFig11Clustering(b *testing.B) {
	for _, m := range exp.Methods {
		b.Run(m, func(b *testing.B) {
			benchFigureCell(b, m, func(r exp.Run) float64 { return r.ClusteringErr }, "clustering-err")
		})
	}
}

// BenchmarkERRNaiveVsReuse is the Lemma 2 vs Lemma 3 ablation: cost of
// the naive per-edge conditional estimator against the sample-reuse
// estimator of Algorithm 2 on the same workload.
func BenchmarkERRNaiveVsReuse(b *testing.B) {
	g, err := exp.ERRCostGraph(120, 3)
	if err != nil {
		b.Fatal(err)
	}
	est := reliability.Estimator{Samples: 100, Seed: 1, Workers: 1}
	b.Run("reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			est.EdgeRelevance(g)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			est.EdgeRelevanceNaive(g)
		}
	})
}

// BenchmarkMEvsUnguided is the Section V-F ablation: entropy gain per
// unit of injected noise, guided versus unguided perturbation.
func BenchmarkMEvsUnguided(b *testing.B) {
	g := benchGraph(b)
	base := privacy.TotalDegreeEntropy(g)
	b.Run("guided", func(b *testing.B) {
		var gain float64
		for i := 0; i < b.N; i++ {
			pert := core.PerturbAll(g, true, 0.2, 0.01, uint64(i))
			gain = privacy.TotalDegreeEntropy(pert) - base
		}
		b.ReportMetric(gain, "entropy-gain-bits")
	})
	b.Run("unguided", func(b *testing.B) {
		var gain float64
		for i := 0; i < b.N; i++ {
			pert := core.PerturbAll(g, false, 0.2, 0.01, uint64(i))
			gain = privacy.TotalDegreeEntropy(pert) - base
		}
		b.ReportMetric(gain, "entropy-gain-bits")
	})
}

// --- observability overhead: instrumented hot paths, observer off vs on ---

// BenchmarkObsOverheadAnonymize measures the cost of the instrumentation
// on the full sigma search: "off" runs with a nil observer (the no-op
// default, a pointer test per update), "on" with a live registry and
// logger-less observer. The two must stay within ~2% of each other.
func BenchmarkObsOverheadAnonymize(b *testing.B) {
	g := benchGraph(b)
	bench := func(o *obs.Observer) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Anonymize(g, core.Params{K: 8, Epsilon: 0.02, Samples: 100, Seed: 42, Obs: o}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("off", bench(nil))
	b.Run("on", bench(obs.NewObserver()))
}

// BenchmarkObsOverheadServe measures the serve-mode tax on the sigma
// search: a bare live observer against the same observer with the
// exposition endpoint bound, its snapshot differ (and runtime/metrics
// sampler) ticking fast in the background, and /metrics plus /trace
// scraped continuously. All of that work lives on the ticker goroutine
// and in request handlers, so the two must stay within ~2% of each other
// (TestObsOverheadGuard enforces it).
func BenchmarkObsOverheadServe(b *testing.B) {
	g := benchGraph(b)
	run := func(b *testing.B, o *obs.Observer) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Anonymize(g, core.Params{K: 8, Epsilon: 0.02, Samples: 100, Seed: 42, Obs: o}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, obs.NewObserver()) })
	b.Run("on", func(b *testing.B) {
		o := obs.NewObserver()
		srv := expose.New(o, expose.Options{Interval: 50 * time.Millisecond})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		stop := make(chan struct{})
		scraped := make(chan struct{})
		go func() {
			defer close(scraped)
			scrape(addr, stop)
		}()
		defer func() { close(stop); <-scraped }()
		b.ResetTimer()
		run(b, o)
	})
}

// BenchmarkObsOverheadEdgeRelevance measures the instrumentation cost on
// the Monte Carlo estimator (worlds-sampled counters, per-worker counts,
// wall-time histogram) against the uninstrumented default.
func BenchmarkObsOverheadEdgeRelevance(b *testing.B) {
	g := benchGraph(b)
	bench := func(o *obs.Observer) func(*testing.B) {
		return func(b *testing.B) {
			est := reliability.Estimator{Samples: 150, Seed: 1, Obs: o}
			for i := 0; i < b.N; i++ {
				est.EdgeRelevance(g)
			}
		}
	}
	b.Run("off", bench(nil))
	b.Run("on", bench(obs.NewObserver()))
}

// --- micro-benchmarks for the hot paths underlying the experiments ---

func BenchmarkSampleWorld(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SampleWorld(rng)
	}
}

func BenchmarkConnectedPairs(b *testing.B) {
	g := benchGraph(b)
	w := g.SampleWorld(rand.New(rand.NewPCG(1, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ConnectedPairs()
	}
}

// BenchmarkWorldSamplerInto measures the allocation-free world-drawing
// kernel (threshold compare per uncertain edge, word-blocked bit stores);
// allocs/op must be 0 — the steady state reuses the world's bitset.
func BenchmarkWorldSamplerInto(b *testing.B) {
	g := benchGraph(b)
	s := g.Sampler()
	var w uncertain.World
	var pcg rand.PCG
	pcg.Seed(1, 1)
	s.SampleInto(&w, &pcg) // grow the reused bitset
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pcg.Seed(1, uint64(i))
		s.SampleInto(&w, &pcg)
	}
}

// BenchmarkComponentsInto measures the fused union-find/pair-count kernel
// over a recycled DSU; allocs/op must be 0 on the steady state.
func BenchmarkComponentsInto(b *testing.B) {
	g := benchGraph(b)
	w := g.SampleWorld(rand.New(rand.NewPCG(1, 1)))
	d, _ := w.ComponentsPairsInto(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ = w.ComponentsPairsInto(d)
	}
}

func BenchmarkObfuscationCheck(b *testing.B) {
	g := benchGraph(b)
	prop := privacy.DegreeProperty(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := privacy.CheckObfuscation(g, prop, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeRelevance(b *testing.B) {
	g := benchGraph(b)
	est := reliability.Estimator{Samples: 150, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.EdgeRelevance(g)
	}
}

// BenchmarkDiscrepancy measures one candidate evaluation as the sweep and
// the σ-search perform it: the original graph's sampled labels are held in
// the shared label cache (computed once per sweep), while the candidate is
// a fresh graph each time — modeled by bumping h's version so its cached
// labeling is stale. The per-op cost is therefore sampling the candidate's
// worlds plus the pair scan, which is exactly the marginal cost of one
// RunCell evaluation in cmd/experiments.
func BenchmarkDiscrepancy(b *testing.B) {
	g := benchGraph(b)
	h := core.PerturbAll(g, true, 0.2, 0.01, 5)
	p0 := h.Edge(0).P
	est := reliability.Estimator{Samples: 150, Seed: 1, Cache: reliability.NewLabelCache()}
	if _, err := est.SampledPairDiscrepancy(g, h, reliability.PairSample{Pairs: 1000, Seed: 2}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.SetProb(0, p0); err != nil { // next candidate: invalidate h's labeling
			b.Fatal(err)
		}
		if _, err := est.SampledPairDiscrepancy(g, h, reliability.PairSample{Pairs: 1000, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscrepancyUncached is the cold-path variant: both graphs
// sampled and labeled from scratch every call, no cache attached.
func BenchmarkDiscrepancyUncached(b *testing.B) {
	g := benchGraph(b)
	h := core.PerturbAll(g, true, 0.2, 0.01, 5)
	est := reliability.Estimator{Samples: 150, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SampledPairDiscrepancy(g, h, reliability.PairSample{Pairs: 1000, Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// perturbDown returns a clone of g with every probability pushed DOWN by
// delta (clamped away from 0): a one-directional perturbation keeps the
// Δ-discrepancy mean away from zero, which a relative-SE stopping target
// needs — a symmetric perturbation's Δ hovers near 0 and no sample budget
// reaches a 5% RELATIVE error on it.
func perturbDown(b *testing.B, g *uncertain.Graph, delta float64) *uncertain.Graph {
	b.Helper()
	h := g.Clone()
	for i := 0; i < h.NumEdges(); i++ {
		p := h.Edge(i).P - delta
		if p < 0.01 {
			p = 0.01
		}
		if err := h.SetProb(i, p); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

// BenchmarkMCSampleEfficiency measures how many Monte Carlo worlds each
// sampling strategy needs to estimate the Figure 4 Δ-discrepancy
// (E[cc(G)] - E[cc(G̃)]) to a 5% relative standard error:
//
//   - fixed: the status-quo fixed-budget estimator. A pilot run measures
//     the achieved RSE, from which the budget a fixed-N user would have to
//     provision follows as N_req = N_pilot * (rse/target)^2.
//   - adaptive: sequential stopping with independent two-sample draws —
//     the samples the closed loop actually consumed.
//   - adaptive-crn: sequential stopping with coupled draws (common random
//     numbers across G and G̃), collapsing the difference's variance.
//
// The per-arm counts land in BENCH_mc.json via the samples_to_target_rse
// metric; scripts/check.sh gates the fixed vs adaptive-crn ratio at >= 5x.
func BenchmarkMCSampleEfficiency(b *testing.B) {
	const (
		targetRSE = 0.05
		pilotN    = 1024
		capN      = 1 << 16
	)
	cfg := benchConfig()
	base, err := cfg.BuildDataset(cfg.Datasets()[0])
	if err != nil {
		b.Fatal(err)
	}
	pert := perturbDown(b, base, 0.01)

	b.Run("fixed", func(b *testing.B) {
		o := obs.NewObserver()
		est := reliability.Estimator{Samples: pilotN, Seed: 42, Obs: o}
		var needed float64
		for i := 0; i < b.N; i++ {
			if _, err := est.DeltaExpectedConnectedPairs(base, pert); err != nil {
				b.Fatal(err)
			}
			rse := o.Registry().Snapshot().Gauges["mc.quality.DeltaExpectedConnectedPairs.last_rse"]
			needed = pilotN * (rse / targetRSE) * (rse / targetRSE)
		}
		b.ReportMetric(needed, "samples_to_target_rse")
	})
	for _, arm := range []struct {
		name string
		mode uncertain.SamplingMode
	}{
		{"adaptive", uncertain.SampleIndependent},
		{"adaptive-crn", uncertain.SampleCoupled},
	} {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			o := obs.NewObserver()
			est := reliability.Estimator{
				Seed: 42, Obs: o, Mode: arm.mode,
				TargetRSE: targetRSE, MaxSamples: capN,
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.DeltaExpectedConnectedPairs(base, pert); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(o.Registry().Snapshot().Gauges["mc.adaptive.last_samples"], "samples_to_target_rse")
		})
	}
}

func BenchmarkAnonymizeRSME(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Anonymize(g, core.Params{K: 8, Epsilon: 0.02, Samples: 100, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricsDistance(b *testing.B) {
	g := benchGraph(b)
	o := metrics.Options{Samples: 5, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Distances(g)
	}
}

func BenchmarkGenerateDatasets(b *testing.B) {
	for _, d := range gen.Datasets() {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Build(rand.New(rand.NewPCG(uint64(i), 1))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttackValidation is the extension experiment A3: the Bayesian
// degree-knowledge attack against original and anonymized releases.
func BenchmarkAttackValidation(b *testing.B) {
	cfg := benchConfig()
	cfg.PaperKs = []int{100}
	var posterior float64
	for i := 0; i < b.N; i++ {
		rows, err := cfg.AttackExperiment()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "RSME" && !r.Failed {
				posterior = r.MeanPosterior
				break
			}
		}
	}
	b.ReportMetric(posterior, "rsme-mean-posterior")
}

// BenchmarkKNNPreservation is the extension experiment A4: reliability
// k-NN preservation per method.
func BenchmarkKNNPreservation(b *testing.B) {
	cfg := benchConfig()
	cfg.PaperKs = []int{100}
	var score float64
	for i := 0; i < b.N; i++ {
		rows, err := cfg.KNNExperiment()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "RSME" && !r.Failed {
				score = r.Score
				break
			}
		}
	}
	b.ReportMetric(score, "rsme-knn-preservation")
}

// BenchmarkCSweepAblation is the extension experiment A5: the effect of
// the candidate-set multiplier c on noise level and utility.
func BenchmarkCSweepAblation(b *testing.B) {
	cfg := benchConfig()
	cfg.PaperKs = []int{100, 150}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.CSweepAblation([]float64{1.5, 3.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHyperANF compares the two neighborhood-function estimators on
// one sampled world.
func BenchmarkHyperANF(b *testing.B) {
	g := benchGraph(b)
	w := g.SampleWorld(rand.New(rand.NewPCG(1, 1)))
	b.Run("fm-anf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			anf.Neighborhood(w, anf.Options{Seed: uint64(i)})
		}
	})
	b.Run("hyperanf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hyperanf.Neighborhood(w, hyperanf.Options{Seed: uint64(i)})
		}
	})
}

// BenchmarkDPComparison is the extension experiment comparing the
// syntactic uncertainty-aware release against the dK-1 differential
// privacy baseline of the related work.
func BenchmarkDPComparison(b *testing.B) {
	cfg := benchConfig()
	cfg.PaperKs = []int{100}
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := cfg.DPComparison()
		if err != nil {
			b.Fatal(err)
		}
		var rsme, dp float64
		for _, r := range rows {
			if r.Dataset != "dblp-q" || r.Failed {
				continue
			}
			switch r.Method {
			case "RSME":
				rsme = r.RelDiscrepancy
			case "DP-1K(2.0)":
				dp = r.RelDiscrepancy
			}
		}
		if rsme > 0 {
			gap = dp / rsme
		}
	}
	b.ReportMetric(gap, "dp/rsme-error-ratio")
}

// BenchmarkCentralityPreservation is the extension experiment measuring
// expected-betweenness preservation per method.
func BenchmarkCentralityPreservation(b *testing.B) {
	cfg := benchConfig()
	cfg.PaperKs = []int{100}
	var overlap float64
	for i := 0; i < b.N; i++ {
		rows, err := cfg.CentralityExperiment()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "RSME" && !r.Failed {
				overlap = r.Overlap
				break
			}
		}
	}
	b.ReportMetric(overlap, "rsme-top20-overlap")
}

// BenchmarkExtractionAblation compares the representative extractors of
// the [29] design space.
func BenchmarkExtractionAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.ExtractionAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBetweenness measures Brandes' algorithm on one sampled world.
func BenchmarkBetweenness(b *testing.B) {
	g := benchGraph(b)
	w := g.SampleWorld(rand.New(rand.NewPCG(1, 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		centrality.Betweenness(w)
	}
}
