module chameleon

go 1.22
