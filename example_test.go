package chameleon_test

import (
	"fmt"
	"log"

	"chameleon"
)

// Build a 4-node uncertain graph and query two-terminal reliability: the
// probability 0 and 3 end up connected across the possible worlds.
func ExamplePairReliability() {
	g := chameleon.NewGraph(4)
	g.MustAddEdge(0, 1, 0.5)
	g.MustAddEdge(1, 2, 0.5)
	g.MustAddEdge(2, 3, 0.5)
	// Series of three p=0.5 edges: R = 0.125 exactly; the Monte Carlo
	// estimate converges there.
	r := chameleon.PairReliability(g, 0, 3, 200000, 1)
	fmt.Printf("R(0,3) ~ %.2f\n", r)
	// Output:
	// R(0,3) ~ 0.12
}

// Publish an uncertain graph under a (k, eps)-obfuscation guarantee and
// verify the guarantee independently.
func ExampleAnonymize() {
	g, err := chameleon.GenerateDataset("brightkite-s", 21)
	if err != nil {
		log.Fatal(err)
	}
	res, err := chameleon.Anonymize(g, chameleon.Options{
		K: 20, Epsilon: 0.01, Samples: 300, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	priv, err := chameleon.CheckPrivacy(g, res.Graph, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vertex set preserved: %v\n", res.Graph.NumNodes() == g.NumNodes())
	fmt.Printf("guarantee met: %v\n", priv.EpsilonTilde <= 0.01)
	// Output:
	// vertex set preserved: true
	// guarantee met: true
}

// Rank edges by reliability relevance: the bridge to a pendant vertex
// dominates the redundant triangle edges.
func ExampleEdgeRelevance() {
	g := chameleon.NewGraph(4)
	g.MustAddEdge(0, 1, 0.9)
	g.MustAddEdge(1, 2, 0.9)
	g.MustAddEdge(0, 2, 0.9) // triangle 0-1-2
	g.MustAddEdge(2, 3, 0.9) // bridge to 3
	rel := chameleon.EdgeRelevance(g, 4000, 7)
	bridge := g.EdgeIndex(2, 3)
	most := 0
	for i := range rel {
		if rel[i] > rel[most] {
			most = i
		}
	}
	fmt.Printf("most relevant edge is the bridge: %v\n", most == bridge)
	// Output:
	// most relevant edge is the bridge: true
}

// Attack a published graph with a degree-knowledge adversary: the star's
// hub is fully identifiable when published unchanged.
func ExampleSimulateAttack() {
	g := chameleon.NewGraph(6)
	for i := 1; i < 6; i++ {
		g.MustAddEdge(0, chameleon.NodeID(i), 1)
	}
	rep, err := chameleon.SimulateAttack(g, g, 2)
	if err != nil {
		log.Fatal(err)
	}
	// Hub: identified with certainty. Leaves: hidden among 5 peers.
	fmt.Printf("top-1 rate %.1f\n", rep.Top1Rate)
	// Output:
	// top-1 rate 0.3
}
