#!/usr/bin/env bash
# CI gate: vet, formatting, the full test suite under the race detector,
# a benchmark pass over the instrumented hot paths whose results land in
# BENCH_obs.json so successive PRs leave a perf trajectory, and a short
# ugload run whose BENCH_load.json gates query-plane p99 latency.
#
# Environment knobs:
#   BENCHTIME          go test -benchtime value for the perf pass (default 1s)
#   OBS_OVERHEAD_GUARD set to 1 to also enforce the <=2% observability
#                      overhead budget, serve mode included: the snapshot
#                      differ, the runtime/metrics sampler and continuous
#                      /metrics + /trace scraping all run during the
#                      measurement (wall-clock sensitive; off by default)
#   SKIP_BENCH_GATE    set to 1 to skip the benchcmp regression gate
#   BENCH_MAX_SLOWDOWN allowed ns/op growth percentage vs the committed
#                      baseline (default 25)
#   COVERAGE_FLOOR     minimum total statement coverage percentage
#                      (default 78.4, the measured seed baseline)
#   FUZZ_BUDGET        go test -fuzztime per fuzz target for the smoke
#                      pass (default 5s; set to 0 to skip fuzzing)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "== go test -race -count=2 (telemetry, MC workers, CLI runner, job plane) =="
# The expose differ, journal writer and quality streams are the
# concurrency-heavy additions, and the reliability worker pools plus the
# runner's signal/cancellation paths cross goroutines by design; a
# dedicated double-count race pass keeps them covered even if the main
# pass is ever narrowed. internal/uncertain rides along because the
# coupled/antithetic/stratified sampler kernels are what those worker
# pools now race over (adaptive rounds share one sampler snapshot).
# internal/query is the newest cross-goroutine surface: the load harness
# hammers one engine (and its shared label cache, HDR recorder shards and
# wide-event writer) from many goroutines at once. internal/testkit joins
# for the CSR differential oracle: it drives the estimator worker pools
# over the packed read-only view, the one representation whose immutability
# the race detector can actually vouch for.
# internal/jobs is the job plane's scheduler: a worker pool, an
# admission gate and an HTTP surface all mutating one manager under
# concurrent submits, cancels and daemon shutdowns. (cmd/chameleond's
# subprocess tests race in the main pass above and smoke below; they are
# too heavy to double.)
go test -race -count=2 ./internal/obs/... ./internal/query/... ./internal/reliability/... ./internal/uncertain/... ./internal/testkit/... ./internal/jobs/... ./cmd/internal/runner/...

coverage_floor="${COVERAGE_FLOOR:-78.4}"
echo "== coverage (floor ${coverage_floor}%) =="
# One plain (non-race) pass doubles as the coverage measurement: the
# per-package "coverage: X%" lines below are the summary, and the profile
# feeds the total-coverage floor gate. -coverpkg=./... attributes cross-
# package coverage (CLI tests exercising internal packages) correctly.
covprofile=$(mktemp)
go test -count=1 -coverprofile="$covprofile" -coverpkg=./... ./...
total=$(go tool cover -func="$covprofile" | awk '/^total:/ { sub(/%/, "", $NF); print $NF }')
rm -f "$covprofile"
echo "total statement coverage: ${total}%"
if ! awk -v t="$total" -v f="$coverage_floor" 'BEGIN { exit !(t+0 >= f+0) }'; then
    echo "coverage gate: total ${total}% is below the floor ${coverage_floor}%" >&2
    exit 1
fi

fuzz_budget="${FUZZ_BUDGET:-5s}"
echo "== fuzz smoke (${fuzz_budget} per target) =="
if [ "$fuzz_budget" = "0" ]; then
    echo "FUZZ_BUDGET=0: fuzz smoke skipped"
else
    # Each target must run alone: go test accepts only one -fuzz match per
    # invocation. The corpus seeds always run; the budget buys random
    # exploration on top.
    go test -run '^$' -fuzz '^FuzzBitsetMask$'         -fuzztime "$fuzz_budget" ./internal/uncertain/
    go test -run '^$' -fuzz '^FuzzReadTSV$'            -fuzztime "$fuzz_budget" ./internal/uncertain/
    go test -run '^$' -fuzz '^FuzzGraphRoundTrip$'     -fuzztime "$fuzz_budget" ./internal/uncertain/
    go test -run '^$' -fuzz '^FuzzDegreeDistribution$' -fuzztime "$fuzz_budget" ./internal/privacy/
    go test -run '^$' -fuzz '^FuzzJobRequest$'         -fuzztime "$fuzz_budget" ./internal/jobs/
fi

echo "== chameleond smoke (burst admission + plane responsiveness) =="
# The job daemon under a 16-submission burst against 2 workers and a
# 2-deep queue: some jobs land (202), overload sheds with 429 +
# Retry-After, every accepted job completes, and the /metrics and /query
# planes keep answering while the anonymizations run.
go test -race -count=1 -run '^TestDaemonLoad$' -v ./cmd/chameleond/

# Both BENCH artifacts share one schema — {name, ns_per_op,
# allocs_per_op, iterations} — so cmd/benchcmp can gate either file.
# Bench lines look like "BenchmarkName-8 <iters> <ns> ns/op ... <a>
# allocs/op" (allocs present under -benchmem; ReportMetric columns may
# sit in between, so allocs/op is located by scanning fields).
emit_single='
    BEGIN { print "[" }
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        allocs = 0
        for (i = 5; i <= NF; i++) if ($i == "allocs/op") allocs = $(i-1)
        if (n++) printf(",\n")
        printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %d, \"iterations\": %s}", name, $3, allocs, $2)
    }
    END { if (n) printf("\n"); print "]" }
'
emit_min='
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        a = 0
        for (i = 5; i <= NF; i++) if ($i == "allocs/op") a = $(i-1)
        if (!(name in ns) || $3+0 < ns[name]) { ns[name] = $3+0; raw[name] = $3; iters[name] = $2 }
        allocs[name] = a+0
        if (!(name in order)) { order[name] = ++n; names[n] = name }
    }
    END {
        print "["
        for (i = 1; i <= n; i++) {
            name = names[i]
            printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %d, \"iterations\": %s}%s\n",
                   name, raw[name], allocs[name], iters[name], i < n ? "," : "")
        }
        print "]"
    }
'

echo "== benchmarks (instrumented hot paths) =="
benchtime="${BENCHTIME:-1s}"
bench_out=$(go test -run '^$' \
    -bench 'BenchmarkObsOverhead|BenchmarkAnonymizeRSME|BenchmarkEdgeRelevance$|BenchmarkSampleWorld|BenchmarkConnectedPairs|BenchmarkObfuscationCheck|BenchmarkDiscrepancy' \
    -benchmem -benchtime "$benchtime" .)
echo "$bench_out"
echo "$bench_out" | awk "$emit_single" > BENCH_obs.json
echo "wrote BENCH_obs.json ($(grep -c '"name"' BENCH_obs.json) entries)"

echo "== reliability benchmarks (-benchmem -count=3, allocation guard) =="
# count=3 smooths the single-iteration noise BENCH_obs.json suffers from;
# the JSON records the minimum ns/op across runs (with that run's
# iteration count) plus allocs/op so both perf and allocation regressions
# are catchable.
rel_out=$(go test -run '^$' \
    -bench 'BenchmarkEdgeRelevance$|BenchmarkDiscrepancy$|BenchmarkDiscrepancyUncached|BenchmarkWorldSamplerInto|BenchmarkComponentsInto|BenchmarkSampleWorld$|BenchmarkConnectedPairs$|BenchmarkAdaptiveChunkLoop' \
    -benchmem -count=3 -benchtime "$benchtime" . ./internal/reliability/)
echo "$rel_out"
echo "$rel_out" | awk "$emit_min" > BENCH_reliability.json
echo "wrote BENCH_reliability.json ($(grep -c '"name"' BENCH_reliability.json) entries)"

echo "== MC sample-efficiency benchmark (adaptive stopping + CRN) =="
# BenchmarkMCSampleEfficiency reports samples_to_target_rse: the Monte
# Carlo worlds each sampling strategy needs to estimate the fig4
# Δ-discrepancy at a 5% relative standard error. The counts are
# deterministic under the pinned benchmark seed; wall time is a function
# of the sample count, so the benchcmp gate for this file runs -skip-ns.
emit_mc='
    BEGIN { print "[" }
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        s = 0
        for (i = 5; i <= NF; i++) if ($i == "samples_to_target_rse") s = $(i-1)
        if (n++) printf(",\n")
        printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": 0, \"iterations\": %s, \"samples_to_target_rse\": %s}", name, $3, $2, s)
    }
    END { if (n) printf("\n"); print "]" }
'
mc_out=$(go test -run '^$' -bench 'BenchmarkMCSampleEfficiency' -benchtime 2x .)
echo "$mc_out"
echo "$mc_out" | awk "$emit_mc" > BENCH_mc.json
echo "wrote BENCH_mc.json ($(grep -c '"name"' BENCH_mc.json) entries)"

# The headline claim of the adaptive+CRN work: reaching the target RSE on
# the fig4 Δ-discrepancy must take >= 5x fewer samples under adaptive
# coupled sampling than the fixed-N budget a user would have to provision.
mc_metric() {
    grep "\"$1\"" BENCH_mc.json | sed 's/.*"samples_to_target_rse": \([0-9.e+-]*\).*/\1/'
}
fixed_n=$(mc_metric "BenchmarkMCSampleEfficiency/fixed")
crn_n=$(mc_metric "BenchmarkMCSampleEfficiency/adaptive-crn")
if ! awk -v f="${fixed_n:-0}" -v c="${crn_n:-0}" 'BEGIN { exit !(c > 0 && f / c >= 5) }'; then
    echo "sample-efficiency gate: adaptive+CRN used ${crn_n:-?} samples vs fixed-N ${fixed_n:-?}; want >= 5x fewer" >&2
    exit 1
fi
echo "sample-efficiency gate: fixed ${fixed_n} vs adaptive-crn ${crn_n} samples (>= 5x)"

echo "== format benchmarks (sectioned v2 vs v1 vs TSV) =="
# One 100k-edge graph decoded from every container format, with the
# at-rest size reported alongside. The two headline claims of the v2
# format are gated right here: decoding v2 into the packed CSR view must
# be >= 5x faster than parsing the TSV, and the v2 file must be >= 3x
# smaller than the TSV (quantized probability column engaged).
emit_fmt='
    BEGIN { print "[" }
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        a = 0; bytes = 0
        for (i = 5; i <= NF; i++) {
            if ($i == "allocs/op") a = $(i-1)
            if ($i == "bytes_on_disk") bytes = $(i-1)
        }
        if (n++) printf(",\n")
        printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %d, \"iterations\": %s", name, $3, a, $2)
        if (bytes > 0) printf(", \"bytes_on_disk\": %d", bytes)
        printf("}")
    }
    END { if (n) printf("\n"); print "]" }
'
fmt_out=$(go test -run '^$' -bench 'BenchmarkFormat' -benchmem -benchtime "$benchtime" ./internal/uncertain/)
echo "$fmt_out"
echo "$fmt_out" | awk "$emit_fmt" > BENCH_format.json
echo "wrote BENCH_format.json ($(grep -c '"name"' BENCH_format.json) entries)"

fmt_field() {
    grep "\"$1\"" BENCH_format.json | sed "s/.*\"$2\": \([0-9.e+-]*\).*/\1/"
}
tsv_ns=$(fmt_field "BenchmarkFormatDecode/tsv" ns_per_op)
v2csr_ns=$(fmt_field "BenchmarkFormatDecode/v2-csr" ns_per_op)
tsv_bytes=$(fmt_field "BenchmarkFormatDecode/tsv" bytes_on_disk)
v2_bytes=$(fmt_field "BenchmarkFormatDecode/v2" bytes_on_disk)
if ! awk -v t="${tsv_ns:-0}" -v v="${v2csr_ns:-0}" 'BEGIN { exit !(v > 0 && t / v >= 5) }'; then
    echo "format gate: v2->CSR decode ${v2csr_ns:-?} ns vs TSV parse ${tsv_ns:-?} ns; want >= 5x faster" >&2
    exit 1
fi
if ! awk -v t="${tsv_bytes:-0}" -v v="${v2_bytes:-0}" 'BEGIN { exit !(v > 0 && t / v >= 3) }'; then
    echo "format gate: v2 file ${v2_bytes:-?} B vs TSV ${tsv_bytes:-?} B; want >= 3x smaller" >&2
    exit 1
fi
echo "format gates: decode ${tsv_ns} -> ${v2csr_ns} ns (>= 5x), size ${tsv_bytes} -> ${v2_bytes} B (>= 3x)"

echo "== v2 smoke (streamed 100k-edge graph through the CLIs) =="
# End-to-end over the real binaries: genug streams a 100k-edge ER graph
# straight to a sectioned v2 file without materializing it, and ugstat
# must pick the format up through LoadFile's magic-number auto-detection
# and report the exact shape back.
smokedir=$(mktemp -d)
go run ./cmd/genug -topology er -nodes 20000 -edges 100000 -probs discrete \
    -format v2 -stream -seed 9 -o "$smokedir/big.ug2"
smoke_out=$(go run ./cmd/ugstat -g "$smokedir/big.ug2" -metric-samples 2)
echo "$smoke_out"
rm -rf "$smokedir"
if ! echo "$smoke_out" | grep -Eq 'edges +100000'; then
    echo "v2 smoke: ugstat did not report the streamed graph's 100000 edges" >&2
    exit 1
fi
echo "v2 smoke: streamed file round-tripped through genug -> ugstat"

echo "== ugload smoke (query-plane SLO, open + closed loop) =="
# A short load run in both loop disciplines against a small generated
# graph. This validates the whole query plane end to end (dispatcher,
# label cache, HDR recording, CO correction, artifact writer) and
# enforces a generous p99 sanity SLO — 500ms on a ~200-node graph only
# trips when something is catastrophically wrong, not on CI noise. The
# BENCH_load.json it writes joins the regression gate below.
go run ./cmd/ugload -nodes 200 -mode both -qps 400 -workers 16 \
    -duration 1s -warmup 200ms -seed 1 -slo-p99 500ms \
    -bench-out BENCH_load.json
for name in "ugload/open" "ugload/closed"; do
    if ! grep -q "\"name\": \"$name\"" BENCH_load.json; then
        echo "ugload smoke: BENCH_load.json is missing the $name entry" >&2
        exit 1
    fi
done
for field in p50_ns p99_ns p999_ns qps error_rate; do
    if ! grep -q "\"$field\"" BENCH_load.json; then
        echo "ugload smoke: BENCH_load.json is missing the $field field" >&2
        exit 1
    fi
done
echo "wrote BENCH_load.json ($(grep -c '"name"' BENCH_load.json) entries)"

echo "== benchmark regression gate (vs committed baseline) =="
if [ "${SKIP_BENCH_GATE:-}" = "1" ]; then
    echo "SKIP_BENCH_GATE=1: regression gate skipped"
else
    basedir=$(mktemp -d)
    trap 'rm -rf "$basedir"' EXIT
    # BENCH_mc.json gates sample counts (wall time is a function of
    # them) and BENCH_load.json gates p99 latency (its ns_per_op mean
    # is the noisiest column of a wall-clock load run), so both run
    # with -skip-ns; benchcmp still gates their own metrics.
    for f in BENCH_obs.json BENCH_reliability.json BENCH_mc.json BENCH_load.json BENCH_format.json; do
        skip_ns=""
        if [ "$f" = "BENCH_mc.json" ] || [ "$f" = "BENCH_load.json" ]; then
            skip_ns="-skip-ns"
        fi
        if git show "HEAD:$f" > "$basedir/$f" 2>/dev/null; then
            go run ./cmd/benchcmp -max-slowdown "${BENCH_MAX_SLOWDOWN:-25}" $skip_ns "$basedir/$f" "$f"
        else
            echo "no committed baseline for $f; gate skipped for this file"
        fi
    done
fi

# The world-sampling and union kernels must stay allocation-free on the
# steady state (the tentpole guarantee of the bitset world engine), and so
# must the adaptive sequential-stopping chunk loop built on top of them.
for kernel in BenchmarkWorldSamplerInto BenchmarkComponentsInto BenchmarkAdaptiveChunkLoop; do
    a=$(grep "\"$kernel\"" BENCH_reliability.json | sed 's/.*"allocs_per_op": \([0-9]*\).*/\1/')
    if [ "${a:-1}" != "0" ]; then
        echo "allocation guard: $kernel reports ${a:-?} allocs/op, want 0" >&2
        exit 1
    fi
done
echo "allocation guard: sampling kernels are allocation-free"

echo "check.sh: all gates passed"
