#!/usr/bin/env bash
# CI gate: vet, formatting, the full test suite under the race detector,
# and a benchmark pass over the instrumented hot paths whose results land
# in BENCH_obs.json so successive PRs leave a perf trajectory.
#
# Environment knobs:
#   BENCHTIME          go test -benchtime value for the perf pass (default 1s)
#   OBS_OVERHEAD_GUARD set to 1 to also enforce the <=2% observability
#                      overhead budget (wall-clock sensitive; off by default)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "== benchmarks (instrumented hot paths) =="
benchtime="${BENCHTIME:-1s}"
bench_out=$(go test -run '^$' \
    -bench 'BenchmarkObsOverhead|BenchmarkAnonymizeRSME|BenchmarkEdgeRelevance$|BenchmarkSampleWorld|BenchmarkConnectedPairs|BenchmarkObfuscationCheck|BenchmarkDiscrepancy' \
    -benchtime "$benchtime" .)
echo "$bench_out"
# go bench output lines look like "BenchmarkName-8  <iters>  <ns> ns/op";
# strip the GOMAXPROCS suffix and convert to a JSON array.
echo "$bench_out" | awk '
    BEGIN { print "[" }
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (n++) printf(",\n")
        printf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3)
    }
    END { if (n) printf("\n"); print "]" }
' > BENCH_obs.json
echo "wrote BENCH_obs.json ($(grep -c '"name"' BENCH_obs.json) entries)"

echo "== reliability benchmarks (-benchmem -count=3, allocation guard) =="
# count=3 smooths the single-iteration noise BENCH_obs.json suffers from;
# the JSON records the minimum ns/op across runs plus allocs/op so both
# perf and allocation regressions are catchable.
rel_out=$(go test -run '^$' \
    -bench 'BenchmarkEdgeRelevance$|BenchmarkDiscrepancy$|BenchmarkDiscrepancyUncached|BenchmarkWorldSamplerInto|BenchmarkComponentsInto|BenchmarkSampleWorld$|BenchmarkConnectedPairs$' \
    -benchmem -count=3 -benchtime "$benchtime" .)
echo "$rel_out"
echo "$rel_out" | awk '
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!(name in ns) || $3+0 < ns[name]) { ns[name] = $3+0; raw[name] = $3 }
        allocs[name] = $7+0
        if (!(name in order)) { order[name] = ++n; names[n] = name }
    }
    END {
        print "["
        for (i = 1; i <= n; i++) {
            name = names[i]
            printf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %d}%s\n",
                   name, raw[name], allocs[name], i < n ? "," : "")
        }
        print "]"
    }
' > BENCH_reliability.json
echo "wrote BENCH_reliability.json ($(grep -c '"name"' BENCH_reliability.json) entries)"

# The world-sampling and union kernels must stay allocation-free on the
# steady state (the tentpole guarantee of the bitset world engine).
for kernel in BenchmarkWorldSamplerInto BenchmarkComponentsInto; do
    a=$(grep "\"$kernel\"" BENCH_reliability.json | sed 's/.*"allocs_per_op": \([0-9]*\).*/\1/')
    if [ "${a:-1}" != "0" ]; then
        echo "allocation guard: $kernel reports ${a:-?} allocs/op, want 0" >&2
        exit 1
    fi
done
echo "allocation guard: sampling kernels are allocation-free"

echo "check.sh: all gates passed"
