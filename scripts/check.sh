#!/usr/bin/env bash
# CI gate: vet, formatting, the full test suite under the race detector,
# and a benchmark pass over the instrumented hot paths whose results land
# in BENCH_obs.json so successive PRs leave a perf trajectory.
#
# Environment knobs:
#   BENCHTIME          go test -benchtime value for the perf pass (default 1s)
#   OBS_OVERHEAD_GUARD set to 1 to also enforce the <=2% observability
#                      overhead budget (wall-clock sensitive; off by default)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "== benchmarks (instrumented hot paths) =="
benchtime="${BENCHTIME:-1s}"
bench_out=$(go test -run '^$' \
    -bench 'BenchmarkObsOverhead|BenchmarkAnonymizeRSME|BenchmarkEdgeRelevance$|BenchmarkSampleWorld|BenchmarkConnectedPairs|BenchmarkObfuscationCheck|BenchmarkDiscrepancy' \
    -benchtime "$benchtime" .)
echo "$bench_out"
# go bench output lines look like "BenchmarkName-8  <iters>  <ns> ns/op";
# strip the GOMAXPROCS suffix and convert to a JSON array.
echo "$bench_out" | awk '
    BEGIN { print "[" }
    $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (n++) printf(",\n")
        printf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3)
    }
    END { if (n) printf("\n"); print "]" }
' > BENCH_obs.json
echo "wrote BENCH_obs.json ($(grep -c '"name"' BENCH_obs.json) entries)"

echo "check.sh: all gates passed"
