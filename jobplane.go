package chameleon

import (
	"errors"

	"chameleon/internal/jobs"
)

// JobSpec is the client-supplied parameterization of one anonymization
// job submitted to the job plane (cmd/chameleond).
type JobSpec = jobs.Spec

// Job is the durable record of one submitted job.
type Job = jobs.Job

// JobStatus is a Job plus the live σ-search progress the scheduler
// layers on top.
type JobStatus = jobs.Status

// JobState is a job's lifecycle position: queued, running, done, failed
// or cancelled.
type JobState = jobs.State

// JobStore is the spool-directory persistence layer: atomic writes for
// every job artifact, so a SIGKILL never leaves torn state.
type JobStore = jobs.Store

// JobManager is the concurrent job scheduler: bounded queue, admission
// control, per-job worker budgets, checkpoint-backed crash recovery.
type JobManager = jobs.Manager

// JobConfig parameterizes NewJobManager.
type JobConfig = jobs.Config

// JobAPI is the job plane's HTTP surface (POST /jobs and friends),
// mountable next to /metrics and /query via Serve's extra handlers.
type JobAPI = jobs.API

// NewJobStore opens (creating if needed) a job spool directory.
func NewJobStore(dir string) (*JobStore, error) { return jobs.NewStore(dir) }

// NewJobManager builds a job scheduler; call Start with the daemon's
// context, and Wait after that context ends.
func NewJobManager(cfg JobConfig) *JobManager { return jobs.NewManager(cfg) }

// NewJobAPI wires the job plane's HTTP handler tree over a manager.
func NewJobAPI(m *JobManager) *JobAPI { return jobs.NewAPI(m) }

// IsJobBusy reports whether err is an admission-control rejection; its
// Retry-After hint travels in the jobs.BusyError it wraps.
func IsJobBusy(err error) bool {
	var busy *jobs.BusyError
	return errors.As(err, &busy)
}
