package chameleon

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"

	"chameleon/internal/attack"
	"chameleon/internal/core"
	"chameleon/internal/gen"
	"chameleon/internal/knn"
	"chameleon/internal/metrics"
	"chameleon/internal/obs"
	"chameleon/internal/privacy"
	"chameleon/internal/reliability"
	"chameleon/internal/repan"
	"chameleon/internal/uncertain"
)

// Graph is an uncertain graph: a simple undirected graph whose edges carry
// independent existence probabilities.
type Graph = uncertain.Graph

// Edge is one uncertain edge (U < V, probability P).
type Edge = uncertain.Edge

// NodeID identifies a vertex (dense integers in [0, NumNodes)).
type NodeID = uncertain.NodeID

// NewGraph returns an empty uncertain graph over n vertices.
func NewGraph(n int) *Graph { return uncertain.New(n) }

// LoadGraph reads an uncertain graph from a TSV file (first line: node
// count; then "u v p" lines; '#' comments allowed).
func LoadGraph(path string) (*Graph, error) { return uncertain.LoadFile(path) }

// SaveGraph writes a graph in the TSV format accepted by LoadGraph.
func SaveGraph(path string, g *Graph) error { return uncertain.SaveFile(path, g) }

// SaveGraphBinary writes a graph in the compact binary format; LoadGraph
// auto-detects it on read. Prefer it for large graphs (~5x smaller and
// much faster to parse than TSV).
func SaveGraphBinary(path string, g *Graph) error { return uncertain.SaveBinaryFile(path, g) }

// ReadGraph parses a graph from a reader in TSV format.
func ReadGraph(r io.Reader) (*Graph, error) { return uncertain.ReadTSV(r) }

// WriteGraph serializes a graph to a writer in TSV format.
func WriteGraph(w io.Writer, g *Graph) error { return uncertain.WriteTSV(w, g) }

// GenerateDataset builds one of the scaled evaluation datasets by name:
// "dblp-s", "brightkite-s" or "ppi-s" (see DESIGN.md for how each mirrors
// its paper counterpart).
func GenerateDataset(name string, seed uint64) (*Graph, error) {
	d, err := gen.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	return d.Build(rand.New(rand.NewPCG(seed, 0xda7a5e7)))
}

// DatasetNames lists the names accepted by GenerateDataset.
func DatasetNames() []string {
	var names []string
	for _, d := range gen.Datasets() {
		names = append(names, d.Name)
	}
	return names
}

// Observer collects observability signals from a pipeline run: a registry
// of counters/gauges/histograms (Monte Carlo sampling volume, genObf
// effort, phase timings), the recorded trace spans, and an optional
// structured logger (set the Logger field). A nil *Observer is a valid
// no-op sink, so instrumentation can stay wired unconditionally.
type Observer = obs.Observer

// NewObserver returns an empty observer ready to be passed via
// Options.Observer.
func NewObserver() *Observer { return obs.NewObserver() }

// NewLogger returns a debug-level structured text logger (for
// Observer.Logger); pass os.Stderr for CLI-style progress output.
func NewLogger(w io.Writer) *slog.Logger { return obs.NewLogger(w) }

// Trace is one span of a hierarchical timing trace; see Result.Trace.
type Trace = obs.Span

// StartProfiles enables the runtime profilers selected by non-empty paths
// (CPU profile, heap profile, execution trace) and returns the stop
// function that flushes them; call it exactly once, typically deferred
// from main.
func StartProfiles(cpuPath, memPath, tracePath string) (stop func() error, err error) {
	return obs.StartProfiles(cpuPath, memPath, tracePath)
}

// Method selects an anonymization algorithm.
type Method string

// The methods evaluated in the paper (Table II).
const (
	// MethodRSME is full Chameleon: reliability-sensitive edge selection
	// plus max-entropy perturbation.
	MethodRSME Method = "RSME"
	// MethodRS keeps reliability-sensitive selection but perturbs with
	// unguided random-sign noise.
	MethodRS Method = "RS"
	// MethodME selects by uniqueness only but perturbs along the entropy
	// gradient.
	MethodME Method = "ME"
	// MethodRepAn is the conventional baseline: extract a deterministic
	// representative, then obfuscate it uncertainty-obliviously.
	MethodRepAn Method = "Rep-An"
)

// Options configures Anonymize.
type Options struct {
	// K is the obfuscation level: each protected vertex must hide within
	// an entropy of at least log2(K) candidate vertices. Required, >= 2.
	K int
	// Epsilon is the tolerated fraction of vertices left under-obfuscated.
	Epsilon float64
	// Method defaults to MethodRSME.
	Method Method
	// Samples is the Monte Carlo budget for reliability estimation
	// (default 1000).
	Samples int
	// Seed makes the run reproducible.
	Seed uint64
	// Workers caps parallelism (0 = all cores).
	Workers int
	// SamplingMode selects the Monte Carlo world-drawing strategy:
	// "independent" (default), "antithetic", "stratified" or "coupled".
	// See DESIGN.md §12 for when each wins.
	SamplingMode string
	// TargetRSE, when positive, switches reliability estimation to
	// adaptive sequential stopping: sampling continues in chunks until the
	// relative standard error of the running estimate drops below this
	// target (or MaxSamples is hit). Samples is then ignored.
	TargetRSE float64
	// MaxSamples caps adaptive sampling (0 = a package default).
	MaxSamples int
	// Attempts is the number of randomized trials per noise level
	// (default 5).
	Attempts int
	// SizeMultiplier is the candidate-set factor c (default 2.0).
	SizeMultiplier float64
	// WhiteNoise is the uniform-noise floor q (default 0.01).
	WhiteNoise float64
	// Observer, when non-nil, receives metrics and structured progress
	// logs from the run (the search trace in Result.Trace is recorded
	// either way).
	Observer *Observer
	// CheckpointPath, when non-empty, snapshots the σ-search state there
	// atomically whenever the run is interrupted (and periodically, per
	// CheckpointEvery), so the search can be resumed.
	CheckpointPath string
	// CheckpointEvery additionally checkpoints every N GenObf calls
	// (0 = only on interrupt). Requires CheckpointPath.
	CheckpointEvery int
	// Resume restores a checkpoint written by an earlier interrupted run
	// over the same graph and parameters; the resumed search replays the
	// remaining work deterministically, so its result is bit-identical to
	// an uninterrupted run.
	Resume *Checkpoint
}

// Checkpoint is a versioned snapshot of an interrupted σ-search; see
// Options.CheckpointPath and Options.Resume.
type Checkpoint = core.Checkpoint

// LoadCheckpoint reads a σ-search checkpoint written by an interrupted
// run (Options.CheckpointPath); pass it via Options.Resume.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpoint(path) }

// Result is the outcome of a successful anonymization.
type Result struct {
	// Graph is the published (k, ε)-obfuscated uncertain graph.
	Graph *Graph
	// EpsilonTilde is the achieved fraction of under-obfuscated vertices.
	EpsilonTilde float64
	// Sigma is the noise level selected by the binary search.
	Sigma float64
	// Method echoes the algorithm used.
	Method Method

	trace *Trace
}

// Trace returns the phase-level search trace of the run: a root
// "anonymize" span with "precompute", "exponential-search" and "bisection"
// children; each search phase holds one "genobf" span per call (sigma
// attribute) whose "attempt" children carry the per-trial outcome
// (epsilon_tilde, ok, injected_edges) and wall time.
func (r *Result) Trace() *Trace { return r.trace }

func (o Options) coreParams() (core.Params, error) {
	mode, err := uncertain.ParseSamplingMode(o.SamplingMode)
	if err != nil {
		return core.Params{}, fmt.Errorf("chameleon: %w", err)
	}
	return core.Params{
		K:               o.K,
		Epsilon:         o.Epsilon,
		Samples:         o.Samples,
		Seed:            o.Seed,
		Workers:         o.Workers,
		SamplingMode:    mode,
		TargetRSE:       o.TargetRSE,
		MaxSamples:      o.MaxSamples,
		Attempts:        o.Attempts,
		SizeMultiplier:  o.SizeMultiplier,
		WhiteNoise:      o.WhiteNoise,
		Obs:             o.Observer,
		CheckpointPath:  o.CheckpointPath,
		CheckpointEvery: o.CheckpointEvery,
		Resume:          o.Resume,
	}, nil
}

// Anonymize publishes g under (K, Epsilon)-obfuscation with the selected
// method, minimizing reliability distortion. It cannot be interrupted;
// see AnonymizeContext.
func Anonymize(g *Graph, o Options) (*Result, error) {
	res, err := AnonymizeContext(context.Background(), g, o)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// AnonymizeContext is Anonymize under a context: cancelling ctx stops the
// run cooperatively at sampling and search boundaries. An interrupted run
// returns a NON-nil *Result carrying the best obfuscation found so far
// (its Graph is nil when none was found yet) together with an error
// wrapping ctx.Err() — callers that want graceful degradation check the
// partial result before giving up. With Options.CheckpointPath set, the
// interrupted search state is also saved for Options.Resume.
func AnonymizeContext(ctx context.Context, g *Graph, o Options) (*Result, error) {
	if o.Method == "" {
		o.Method = MethodRSME
	}
	p, err := o.coreParams()
	if err != nil {
		return nil, err
	}
	var res *core.Result
	switch o.Method {
	case MethodRSME:
		p.Variant = core.RSME
		res, err = core.AnonymizeContext(ctx, g, p)
	case MethodRS:
		p.Variant = core.RS
		res, err = core.AnonymizeContext(ctx, g, p)
	case MethodME:
		p.Variant = core.ME
		res, err = core.AnonymizeContext(ctx, g, p)
	case MethodRepAn:
		res, err = repan.AnonymizeContext(ctx, g, p)
	default:
		return nil, fmt.Errorf("chameleon: unknown method %q", o.Method)
	}
	if res == nil {
		return nil, err
	}
	o.Observer.AttachSpan(res.Trace)
	return &Result{Graph: res.Graph, EpsilonTilde: res.EpsilonTilde, Sigma: res.Sigma, Method: o.Method, trace: res.Trace}, err
}

// PrivacyReport describes how well a published graph obfuscates the
// vertices of the original graph against a degree-knowledge adversary.
type PrivacyReport struct {
	// K is the checked obfuscation level.
	K int
	// NonObfuscated counts vertices whose posterior entropy falls below
	// log2(K).
	NonObfuscated int
	// EpsilonTilde is NonObfuscated / |V|.
	EpsilonTilde float64
}

// CheckPrivacy verifies Definition 3: whether pub k-obfuscates the
// vertices of orig (the adversary knows original expected degrees).
func CheckPrivacy(orig, pub *Graph, k int) (PrivacyReport, error) {
	rep, err := privacy.CheckObfuscation(pub, privacy.DegreeProperty(orig), k)
	if err != nil {
		return PrivacyReport{}, err
	}
	return PrivacyReport{K: k, NonObfuscated: rep.NonObfuscated, EpsilonTilde: rep.EpsilonTilde}, nil
}

// UtilityOptions configures EvaluateUtility.
type UtilityOptions struct {
	// Samples is the reliability Monte Carlo budget (default 1000).
	Samples int
	// MetricSamples is the world budget for distance/clustering metrics
	// (default 50).
	MetricSamples int
	// Pairs is the vertex-pair sample for discrepancy (default 20000).
	Pairs int
	// Seed drives sampling.
	Seed uint64
	// Workers caps parallelism.
	Workers int
	// SamplingMode selects the world-drawing strategy for reliability
	// estimation: "independent" (default), "antithetic", "stratified" or
	// "coupled". "coupled" uses common random numbers across the two
	// graphs, collapsing the variance of the discrepancy estimate.
	SamplingMode string
	// TargetRSE, when positive, enables adaptive sequential stopping for
	// the reliability estimators (see Options.TargetRSE).
	TargetRSE float64
	// MaxSamples caps adaptive sampling (0 = a package default).
	MaxSamples int
}

// UtilityReport compares a published graph to the original across the
// paper's evaluation metrics (Section VI-A). Error fields are relative:
// |published - original| / original.
type UtilityReport struct {
	// ReliabilityDiscrepancy is the mean per-pair reliability discrepancy
	// normalized by the original's mean pair reliability (Figures 4/8).
	ReliabilityDiscrepancy float64
	// AvgDegreeError (Figure 9).
	AvgDegreeError float64
	// AvgDistanceError (Figure 10).
	AvgDistanceError float64
	// ClusteringError (Figure 11).
	ClusteringError float64
	// EffectiveDiameterError is the supplementary node-separation error.
	EffectiveDiameterError float64
}

// EvaluateUtility measures how much structure pub lost relative to orig.
func EvaluateUtility(orig, pub *Graph, o UtilityOptions) (UtilityReport, error) {
	if o.MetricSamples <= 0 {
		o.MetricSamples = 50
	}
	mode, err := uncertain.ParseSamplingMode(o.SamplingMode)
	if err != nil {
		return UtilityReport{}, fmt.Errorf("chameleon: %w", err)
	}
	// The per-call label cache lets the discrepancy estimate and its
	// normalization term share one sampling pass over orig.
	est := reliability.Estimator{
		Samples: o.Samples, Seed: o.Seed, Workers: o.Workers,
		Cache: reliability.NewLabelCache(), Mode: mode,
		TargetRSE: o.TargetRSE, MaxSamples: o.MaxSamples,
	}
	rel, err := est.RelativeDiscrepancy(orig, pub, reliability.PairSample{Pairs: o.Pairs, Seed: o.Seed + 1})
	if err != nil {
		return UtilityReport{}, err
	}
	mo := metrics.Options{Samples: o.MetricSamples, Seed: o.Seed + 2, Workers: o.Workers}
	origDist := mo.Distances(orig)
	pubDist := mo.Distances(pub)
	return UtilityReport{
		ReliabilityDiscrepancy: rel,
		AvgDegreeError:         metrics.RelativeError(metrics.AverageDegree(orig), metrics.AverageDegree(pub)),
		AvgDistanceError:       metrics.RelativeError(origDist.AverageDistance, pubDist.AverageDistance),
		ClusteringError:        metrics.RelativeError(mo.ClusteringCoefficient(orig), mo.ClusteringCoefficient(pub)),
		EffectiveDiameterError: metrics.RelativeError(origDist.EffectiveDiameter, pubDist.EffectiveDiameter),
	}, nil
}

// PairReliability estimates R_{u,v}: the probability that u and v are
// connected in a random possible world of g.
func PairReliability(g *Graph, u, v NodeID, samples int, seed uint64) float64 {
	est := reliability.Estimator{Samples: samples, Seed: seed}
	return est.PairReliability(g, u, v)
}

// ReliabilityFrom estimates R_{src,v} for every vertex v in one pass: the
// probability that each vertex is connected to src over the possible
// worlds. Useful for reliability-based nearest-neighbor queries.
func ReliabilityFrom(g *Graph, src NodeID, samples int, seed uint64) []float64 {
	est := reliability.Estimator{Samples: samples, Seed: seed}
	return est.ReliabilityVector(g, src)
}

// Representative extracts a deterministic representative instance of g
// (the first phase of the Rep-An baseline).
func Representative(g *Graph) *Graph { return repan.Representative(g) }

// AttackReport summarizes a simulated degree-knowledge re-identification
// attack (the identity-disclosure threat of Section III-C).
type AttackReport struct {
	// MeanPosterior is the average probability the Bayesian adversary
	// assigns to the true vertex (random guessing: 1/|V|; the k-obf
	// target regime: <= ~1/k).
	MeanPosterior float64
	// Top1Rate is the fraction of targets identified by the adversary's
	// single best guess.
	Top1Rate float64
	// TopKRate is the fraction of targets inside the adversary's top-k
	// shortlist.
	TopKRate float64
	// MeanRank is the true vertex's average rank in the candidate list.
	MeanRank float64
}

// SimulateAttack attacks the published graph pub with an adversary who
// knows each target's degree in orig, reporting aggregate success. Use it
// to validate empirically what CheckPrivacy certifies formally.
func SimulateAttack(orig, pub *Graph, k int) (AttackReport, error) {
	rep, err := attack.Simulate(orig, pub, k)
	if err != nil {
		return AttackReport{}, err
	}
	return AttackReport{
		MeanPosterior: rep.MeanPosterior,
		Top1Rate:      rep.Top1Rate,
		TopKRate:      rep.TopKRate,
		MeanRank:      rep.MeanRank,
	}, nil
}

// ReliabilityKNN returns the k vertices most reliably connected to src
// (the query model of Potamias et al. [30]). The result may be shorter
// than k when fewer vertices are reachable.
func ReliabilityKNN(g *Graph, src NodeID, k, samples int, seed uint64) ([]NodeID, error) {
	est := reliability.Estimator{Samples: samples, Seed: seed}
	neighbors, err := knn.Query(g, src, k, est)
	if err != nil {
		return nil, err
	}
	out := make([]NodeID, len(neighbors))
	for i, n := range neighbors {
		out[i] = n.Node
	}
	return out, nil
}

// KNNPreservation measures how well pub answers reliability k-NN queries
// like orig: the mean Jaccard similarity of top-k neighborhoods over
// random query vertices (1 = intact).
func KNNPreservation(orig, pub *Graph, k, queries, samples int, seed uint64) (float64, error) {
	est := reliability.Estimator{Samples: samples, Seed: seed}
	return knn.PreservationScore(orig, pub, knn.PreservationOptions{K: k, Queries: queries, Seed: seed + 1}, est)
}

// EdgeRelevance estimates the reliability relevance ERR of every edge of
// g: the drop in expected pairwise connectivity if the edge were certainly
// absent versus certainly present (Definition 5, estimated with the
// sample-reuse Algorithm 2). High-relevance edges are the probabilistic
// generalization of bridges.
func EdgeRelevance(g *Graph, samples int, seed uint64) []float64 {
	est := reliability.Estimator{Samples: samples, Seed: seed}
	return est.EdgeRelevance(g)
}
